package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// The metricname pass guards the metric namespace the whole BENCH_N.json
// pipeline keys on: u1benchdiff compares runs series-by-series, so a typo'd
// name does not fail anything — it silently mints a new series that is never
// compared against baseline. Every name passed to a *metrics.Registry
// Counter/Gauge/Histogram constructor must therefore parse against the
// documented grammar below (ROADMAP.md "Metric naming scheme").
//
// Names are resolved statically: string constants (including the exported
// metrics.*Prefix constants), `+` concatenation, and single-assignment local
// variables all fold; genuinely dynamic parts (op.String(), strconv.Itoa,
// config fields) become a placeholder segment that matches the grammar's
// `*` positions. A name that is dynamic from its first segment cannot be
// validated and is skipped.

var metricnamePass = &Pass{
	Name:  "metricname",
	Allow: "metricname",
	Doc:   "metric names passed to metrics.Registry constructors must match the documented grammar",
	Run:   runMetricname,
}

// metricProductions is the grammar: one production per documented series
// shape, `*` matching exactly one dynamic segment (an Op name, a shard index,
// a backend name). Extending the metric namespace means extending this table
// and the ROADMAP section in the same change — that is the point.
var metricProductions = []string{
	"api.op.*.seconds", "api.op.*.count", "api.op.*.errors",
	"api.sessions.active", "api.server.*.ops", "api.region.refused",
	"rpc.errors", "rpc.class.*.seconds", "rpc.*.seconds",
	"meta.shard.*.reads", "meta.shard.*.writes",
	"meta.shard.*.read_hold.seconds", "meta.shard.*.write_hold.seconds",
	"meta.delta.served", "meta.delta.truncated",
	"meta.get_from_scratch", "meta.deltalog.trimmed",
	"blob.put.bytes", "blob.put.seconds", "blob.get.bytes", "blob.get.seconds",
	"blob.deletes", "blob.object.bytes", "blob.objects.held",
	"notify.published", "notify.delivered", "notify.dropped", "notify.fanout",
	"gateway.sessions.placed", "gateway.sessions.active",
	"gateway.place.seconds", "gateway.backend.*.placed",
	"wal.appends", "wal.snapshots", "wal.replayed",
	"wal.torn_bytes_dropped", "wal.errors", "wal.journaled",
	"faults.injected", "faults.shed", "faults.sso_shed",
	"faults.retried", "faults.retry_succeeded",
	"repl.published", "repl.applied", "repl.lww_skipped", "repl.revoked_blocked",
	"repl.reads.local", "repl.reads.remote", "repl.reads.stale",
	"repl.backlog.depth", "repl.lag.epochs",
}

// dynSegment marks a statically-unresolvable span inside a folded name.
const dynSegment = "\x00"

func runMetricname(p *Package, report reportFunc) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			env := buildNameEnv(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Counter", "Gauge", "Histogram":
				default:
					return true
				}
				if !isRegistryMethod(p, sel) {
					return true
				}
				name := foldName(p, call.Args[0], env, 0)
				if name == "" {
					report(call.Args[0], "empty metric name passed to Registry.%s", sel.Sel.Name)
					return true
				}
				// Dynamic from the first segment: nothing to validate.
				if strings.HasPrefix(name, dynSegment) {
					return true
				}
				if !matchesGrammar(name) {
					report(call.Args[0], "metric name %q does not match the documented naming grammar (ROADMAP.md); a mistyped name mints a silent new series that u1benchdiff never compares", strings.ReplaceAll(name, dynSegment, "<dyn>"))
				}
				return true
			})
		}
	}
}

// isRegistryMethod reports whether sel is a method call on
// u1/internal/metrics.Registry (other types also expose Counter-shaped
// helpers, e.g. scenario results; those are out of scope).
func isRegistryMethod(p *Package, sel *ast.SelectorExpr) bool {
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return false
	}
	named := namedType(selection.Recv())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == "u1/internal/metrics"
}

// buildNameEnv maps each local variable assigned exactly once in body to its
// initializer, so `name := metrics.APIOpPrefix + op.String()` folds at the
// use sites below it.
func buildNameEnv(p *Package, body *ast.BlockStmt) map[*types.Var]ast.Expr {
	counts := make(map[*types.Var]int)
	inits := make(map[*types.Var]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			counts[v]++
			if len(as.Lhs) == len(as.Rhs) {
				inits[v] = as.Rhs[i]
			}
		}
		return true
	})
	env := make(map[*types.Var]ast.Expr)
	for v, e := range inits {
		if counts[v] == 1 {
			env[v] = e
		}
	}
	return env
}

// foldName statically folds a string expression: constants fold to their
// value, `+` concatenates, single-assignment locals inline, everything else
// becomes a dynamic-segment marker.
func foldName(p *Package, e ast.Expr, env map[*types.Var]ast.Expr, depth int) string {
	if depth > 16 {
		return dynSegment
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return foldName(p, x.X, env, depth+1)
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return foldName(p, x.X, env, depth+1) + foldName(p, x.Y, env, depth+1)
		}
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if v, ok := obj.(*types.Var); ok {
			if init, ok := env[v]; ok {
				return foldName(p, init, env, depth+1)
			}
		}
	}
	return dynSegment
}

// matchesGrammar checks the folded name against the production table,
// segment by segment; a `*` production segment accepts any non-empty
// segment, including a dynamic one.
func matchesGrammar(name string) bool {
	segs := strings.Split(name, ".")
	for _, prod := range metricProductions {
		if matchProduction(strings.Split(prod, "."), segs) {
			return true
		}
	}
	return false
}

func matchProduction(prod, segs []string) bool {
	if len(prod) != len(segs) {
		return false
	}
	for i := range prod {
		if prod[i] == "*" {
			if segs[i] == "" {
				return false
			}
			continue
		}
		if segs[i] != prod[i] {
			return false
		}
	}
	return true
}
