package protocol

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestHashRoundTrip(t *testing.T) {
	h := HashBytes([]byte("ubuntu one"))
	if h.IsZero() {
		t.Fatal("hash of content should not be zero")
	}
	parsed, err := ParseHash(h.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != h {
		t.Error("hex round trip mismatch")
	}
	if h.String() != "sha1:"+h.Hex() {
		t.Error("String format")
	}
}

func TestParseHashErrors(t *testing.T) {
	if _, err := ParseHash("zz"); err == nil {
		t.Error("non-hex should fail")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Error("short hash should fail")
	}
}

func TestZeroHash(t *testing.T) {
	var h Hash
	if !h.IsZero() {
		t.Error("zero hash should report IsZero")
	}
}

func TestOpNames(t *testing.T) {
	for _, op := range Ops() {
		name := op.String()
		if name == "" {
			t.Fatalf("op %d has no name", op)
		}
		back, err := ParseOp(name)
		if err != nil || back != op {
			t.Errorf("ParseOp(%q) = %v, %v", name, back, err)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Error("unknown op formatting")
	}
	if _, err := ParseOp("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestOpClassifications(t *testing.T) {
	if !OpPutContent.IsData() || !OpGetContent.IsData() {
		t.Error("transfers are data ops")
	}
	if OpListVolumes.IsData() {
		t.Error("ListVolumes is metadata")
	}
	if !OpUnlink.IsDataManagement() || !OpMakeDir.IsDataManagement() {
		t.Error("mutations are data management")
	}
	if OpPing.IsDataManagement() {
		t.Error("ping is not data management")
	}
	if !OpAuthenticate.IsSessionManagement() || !OpPing.IsSessionManagement() {
		t.Error("session management misclassified")
	}
	if OpUnlink.IsSessionManagement() {
		t.Error("unlink is not session management")
	}
}

func TestRPCNamesAndClasses(t *testing.T) {
	for _, r := range RPCs() {
		name := r.String()
		if name == "" {
			t.Fatalf("rpc %d has no name", r)
		}
		back, err := ParseRPC(name)
		if err != nil || back != r {
			t.Errorf("ParseRPC(%q) = %v, %v", name, back, err)
		}
		if g := r.FigureGroup(); g != "fs" && g != "upload" && g != "other" {
			t.Errorf("rpc %v group %q", r, g)
		}
	}
	if RPCDeleteVolume.Class() != ClassCascade || RPCGetFromScratch.Class() != ClassCascade {
		t.Error("cascade RPCs misclassified")
	}
	if RPCMakeFile.Class() != ClassWrite || RPCMakeContent.Class() != ClassWrite {
		t.Error("write RPCs misclassified")
	}
	if RPCListVolumes.Class() != ClassRead || RPCGetNode.Class() != ClassRead {
		t.Error("read RPCs misclassified")
	}
	for _, c := range []RPCClass{ClassRead, ClassWrite, ClassCascade} {
		if c.String() == "" {
			t.Error("class should render")
		}
	}
	if _, err := ParseRPC("dal.nope"); err == nil {
		t.Error("unknown RPC name should fail")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	errs := []error{nil, ErrAuthFailed, ErrNotFound, ErrExists, ErrPermission,
		ErrBadRequest, ErrConflict, ErrQuota, ErrUnavailable, ErrCancelled,
		ErrOverloaded}
	for _, e := range errs {
		s := StatusOf(e)
		back := s.Err()
		if e == nil {
			if back != nil {
				t.Errorf("nil error round trip gave %v", back)
			}
			continue
		}
		if !errors.Is(back, e) {
			t.Errorf("status %v round trip gave %v, want %v", s, back, e)
		}
	}
	// Unknown errors collapse to unavailable.
	if StatusOf(errors.New("db on fire")) != StatusUnavailable {
		t.Error("unknown errors should map to unavailable")
	}
	if StatusOK.String() == "" || Status(99).String() == "" {
		t.Error("status strings")
	}
}

// TestStatusesCoversVocabulary pins the Statuses() enumeration: every
// defined status renders a real name and round-trips through Err/StatusOf,
// so classification tables built over Statuses() really cover everything.
func TestStatusesCoversVocabulary(t *testing.T) {
	all := Statuses()
	if all[0] != StatusOK || all[len(all)-1] != StatusOverloaded {
		t.Errorf("statuses = %v, want StatusOK..StatusOverloaded", all)
	}
	for _, s := range all {
		if s.String() == fmt.Sprintf("status(%d)", uint8(s)) {
			t.Errorf("status %d has no name", s)
		}
		if s == StatusOK {
			continue
		}
		if back := StatusOf(s.Err()); back != s {
			t.Errorf("status %v round trips to %v", s, back)
		}
	}
}

func sampleRequest() *Request {
	return &Request{
		ID:             42,
		Op:             OpPutContent,
		Token:          "oauth-token-1",
		Volume:         3,
		Node:           99,
		Parent:         7,
		Name:           "song.mp3",
		Hash:           HashBytes([]byte("content")),
		Size:           4 << 20,
		CompressedSize: 3 << 20,
		Upload:         11,
		Part:           2,
		Data:           []byte{1, 2, 3, 4},
		Final:          true,
		FromGen:        123,
		ToUser:         55,
		ReadOnly:       true,
		Share:          8,
		Attempt:        2,
		Delay:          1500 * time.Millisecond, // accumulated retry backoff
	}
}

func TestRequestRoundTrip(t *testing.T) {
	q := sampleRequest()
	got, err := UnmarshalRequest(q.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q, got) {
		t.Errorf("request round trip:\n got %+v\nwant %+v", got, q)
	}
}

func TestRequestEmptyRoundTrip(t *testing.T) {
	q := &Request{Op: OpPing}
	got, err := UnmarshalRequest(q.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q, got) {
		t.Errorf("empty request round trip:\n got %+v\nwant %+v", got, q)
	}
}

func TestRequestTruncated(t *testing.T) {
	buf := sampleRequest().Marshal()
	for cut := 0; cut < len(buf)-1; cut += 3 {
		if _, err := UnmarshalRequest(buf[:cut]); err == nil {
			// Truncation in the trailing boolean region can decode by
			// accident only if all remaining fields were consumed; the
			// encoder writes fixed field count so any cut must error.
			t.Errorf("cut=%d decoded successfully", cut)
		}
	}
}

func sampleResponse() *Response {
	return &Response{
		ID:      42,
		Status:  StatusOK,
		Session: 1001,
		User:    55,
		Volumes: []VolumeInfo{
			{ID: 0, Type: VolumeRoot, Path: "~/Ubuntu One", Generation: 10, Owner: 55},
			{ID: 4, Type: VolumeUDF, Path: "~/Music", Generation: 3, Owner: 55},
		},
		Shares: []ShareInfo{
			{ID: 1, Volume: 4, SharedBy: 55, SharedTo: 77, Name: "proj", ReadOnly: true, Accepted: true},
		},
		Node: NodeInfo{ID: 9, Volume: 4, Parent: 2, Kind: KindFile, Name: "a.txt",
			Hash: HashBytes([]byte("x")), Size: 17, Generation: 5},
		Deltas: []DeltaEntry{
			{Node: NodeInfo{ID: 10, Volume: 4, Kind: KindDir, Name: "d"}, Deleted: false},
			{Node: NodeInfo{ID: 11, Volume: 4, Kind: KindFile, Name: "gone"}, Deleted: true},
		},
		Generation: 99,
		Reused:     true,
		Upload:     5,
		Parts:      3,
		Hash:       HashBytes([]byte("y")),
		Size:       123456,
		Data:       []byte("part-data"),
	}
}

func TestResponseRoundTrip(t *testing.T) {
	p := sampleResponse()
	got, err := UnmarshalResponse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("response round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestResponseEmptyRoundTrip(t *testing.T) {
	p := &Response{ID: 7, Status: StatusNotFound}
	got, err := UnmarshalResponse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Errorf("empty response round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestPushRoundTrip(t *testing.T) {
	n := &Push{
		Event:      PushShareOffered,
		Volume:     3,
		Generation: 12,
		Share:      ShareInfo{ID: 2, Volume: 3, SharedBy: 1, SharedTo: 2, Name: "s"},
	}
	got, err := UnmarshalPush(n.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n, got) {
		t.Errorf("push round trip:\n got %+v\nwant %+v", got, n)
	}
	for _, e := range []PushEvent{PushVolumeChanged, PushShareOffered, PushShareDeleted, PushEvent(9)} {
		if e.String() == "" {
			t.Error("push event should render")
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	garbage := [][]byte{nil, {0xFF}, {1, 2, 3}}
	for _, g := range garbage {
		if _, err := UnmarshalResponse(g); err == nil {
			t.Errorf("UnmarshalResponse(%v) should fail", g)
		}
		if _, err := UnmarshalPush(g); err == nil {
			t.Errorf("UnmarshalPush(%v) should fail", g)
		}
	}
	if _, err := UnmarshalRequest(nil); err == nil {
		t.Error("UnmarshalRequest(nil) should fail")
	}
}

// Property: random requests round-trip through marshal/unmarshal.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := &Request{
			ID:      r.Uint64(),
			Op:      Op(r.Intn(numOps)),
			Token:   randString(r, 20),
			Volume:  VolumeID(r.Uint64()),
			Node:    NodeID(r.Uint64()),
			Parent:  NodeID(r.Uint64()),
			Name:    randString(r, 40),
			Size:    r.Uint64(),
			FromGen: Generation(r.Uint64()),
			Final:   r.Intn(2) == 0,
		}
		r.Read(q.Hash[:])
		// The decoder normalizes empty payloads to nil, so only set Data
		// when non-empty.
		if s := randString(r, 100); r.Intn(2) == 0 && s != "" {
			q.Data = []byte(s)
		}
		got, err := UnmarshalRequest(q.Marshal())
		return err == nil && reflect.DeepEqual(q, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randString(r *rand.Rand, maxLen int) string {
	n := r.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}
