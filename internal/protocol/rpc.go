package protocol

import "fmt"

// RPC enumerates the data-access-layer operations that API servers issue
// against RPC servers, which translate them into metadata-store queries.
// The vocabulary merges Table 2 (file-system management), Table 4 (upload
// management) and the read-only RPCs of Fig. 12c.
type RPC uint8

// DAL RPC operations.
const (
	// File-system management (Table 2 / Fig. 12a).
	RPCListVolumes  RPC = iota // dal.list_volumes
	RPCListShares              // dal.list_shares
	RPCMakeDir                 // dal.make_dir
	RPCMakeFile                // dal.make_file
	RPCUnlinkNode              // dal.unlink_node
	RPCMove                    // dal.move
	RPCCreateUDF               // dal.create_udf
	RPCDeleteVolume            // dal.delete_volume (cascade)
	RPCGetDelta                // dal.get_delta
	RPCCreateShare             // dal.create_share
	RPCAcceptShare             // dal.accept_share
	RPCGetVolumeID             // dal.get_volume_id

	// Upload management (Table 4 / Fig. 12b).
	RPCAddPartToUploadJob      // dal.add_part_to_uploadjob
	RPCDeleteUploadJob         // dal.delete_uploadjob
	RPCGetReusableContent      // dal.get_reusable_content
	RPCGetUploadJob            // dal.get_uploadjob
	RPCMakeContent             // dal.make_content
	RPCMakeUploadJob           // dal.make_uploadjob
	RPCSetUploadJobMultipartID // dal.set_uploadjob_multipart_id
	RPCTouchUploadJob          // dal.touch_uploadjob

	// Other read-only RPCs (Fig. 12c).
	RPCGetUserIDFromToken // auth.get_user_id_from_token
	RPCGetFromScratch     // dal.get_from_scratch (cascade read of a full volume)
	RPCGetNode            // dal.get_node
	RPCGetRoot            // dal.get_root
	RPCGetUserData        // dal.get_user_data

	numRPCs = int(RPCGetUserData) + 1
)

var rpcNames = [numRPCs]string{
	RPCListVolumes:             "dal.list_volumes",
	RPCListShares:              "dal.list_shares",
	RPCMakeDir:                 "dal.make_dir",
	RPCMakeFile:                "dal.make_file",
	RPCUnlinkNode:              "dal.unlink_node",
	RPCMove:                    "dal.move",
	RPCCreateUDF:               "dal.create_udf",
	RPCDeleteVolume:            "dal.delete_volume",
	RPCGetDelta:                "dal.get_delta",
	RPCCreateShare:             "dal.create_share",
	RPCAcceptShare:             "dal.accept_share",
	RPCGetVolumeID:             "dal.get_volume_id",
	RPCAddPartToUploadJob:      "dal.add_part_to_uploadjob",
	RPCDeleteUploadJob:         "dal.delete_uploadjob",
	RPCGetReusableContent:      "dal.get_reusable_content",
	RPCGetUploadJob:            "dal.get_uploadjob",
	RPCMakeContent:             "dal.make_content",
	RPCMakeUploadJob:           "dal.make_uploadjob",
	RPCSetUploadJobMultipartID: "dal.set_uploadjob_multipart_id",
	RPCTouchUploadJob:          "dal.touch_uploadjob",
	RPCGetUserIDFromToken:      "auth.get_user_id_from_token",
	RPCGetFromScratch:          "dal.get_from_scratch",
	RPCGetNode:                 "dal.get_node",
	RPCGetRoot:                 "dal.get_root",
	RPCGetUserData:             "dal.get_user_data",
}

// String implements fmt.Stringer using the dal.* names of the paper.
func (r RPC) String() string {
	if int(r) < len(rpcNames) && rpcNames[r] != "" {
		return rpcNames[r]
	}
	return fmt.Sprintf("rpc(%d)", uint8(r))
}

// RPCs returns the full RPC vocabulary in declaration order.
func RPCs() []RPC {
	out := make([]RPC, numRPCs)
	for i := range out {
		out[i] = RPC(i)
	}
	return out
}

// ParseRPC returns the RPC with the given dal.* name.
func ParseRPC(s string) (RPC, error) {
	for i, n := range rpcNames {
		if n == s {
			return RPC(i), nil
		}
	}
	return 0, fmt.Errorf("protocol: unknown RPC %q", s)
}

// RPCClass is the three-way classification of Fig. 13: read RPCs exploit
// lockless parallel access to shard replicas and are fastest; write/update/
// delete RPCs go to shard masters; cascade RPCs touch many rows (or even
// multiple shards) and are more than an order of magnitude slower.
type RPCClass uint8

// RPC classes.
const (
	ClassRead RPCClass = iota
	ClassWrite
	ClassCascade
)

// String implements fmt.Stringer.
func (c RPCClass) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write/update/delete"
	case ClassCascade:
		return "cascade"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Class returns the Fig. 13 class of the RPC. delete_volume and
// get_from_scratch are the two cascade operations called out by the paper.
func (r RPC) Class() RPCClass {
	switch r {
	case RPCDeleteVolume, RPCGetFromScratch:
		return ClassCascade
	case RPCMakeDir, RPCMakeFile, RPCUnlinkNode, RPCMove, RPCCreateUDF,
		RPCCreateShare, RPCAcceptShare, RPCAddPartToUploadJob,
		RPCDeleteUploadJob, RPCMakeContent, RPCMakeUploadJob,
		RPCSetUploadJobMultipartID, RPCTouchUploadJob:
		return ClassWrite
	default:
		return ClassRead
	}
}

// FigureGroup returns which Fig. 12 panel the RPC belongs to: "fs" (12a,
// file-system management), "upload" (12b) or "other" (12c).
func (r RPC) FigureGroup() string {
	switch r {
	case RPCListVolumes, RPCListShares, RPCMakeDir, RPCMakeFile, RPCUnlinkNode,
		RPCMove, RPCCreateUDF, RPCDeleteVolume, RPCGetDelta, RPCGetVolumeID:
		return "fs"
	case RPCAddPartToUploadJob, RPCDeleteUploadJob, RPCGetReusableContent,
		RPCGetUploadJob, RPCMakeContent, RPCMakeUploadJob,
		RPCSetUploadJobMultipartID, RPCTouchUploadJob:
		return "upload"
	default:
		return "other"
	}
}
