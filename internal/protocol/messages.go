package protocol

import (
	"fmt"
	"time"

	"u1/internal/wire"
)

// Frame type bytes of the storage protocol. Clients send FrameRequest,
// servers answer FrameResponse and push unsolicited FramePush notifications
// over the same persistent TCP connection (§3.3, push-based sync).
const (
	FrameRequest  byte = 1
	FrameResponse byte = 2
	FramePush     byte = 3
)

// Request is the client-to-server envelope. One struct serves all operations
// of Table 2: Op selects the operation and the operands it reads. Every field
// is encoded unconditionally (zero values cost one byte each), which keeps
// the codec branch-free and immune to per-op drift.
type Request struct {
	ID uint64 // correlation id, echoed on the response
	Op Op

	Token          string     // Authenticate: OAuth token
	Volume         VolumeID   // target volume
	Node           NodeID     // target node
	Parent         NodeID     // MakeFile/MakeDir/Move destination directory
	Name           string     // node name, UDF path or share name
	Hash           Hash       // PutContent: SHA-1 offered for deduplication
	Size           uint64     // PutContent: plain size in bytes
	CompressedSize uint64     // PutContent: deflated size the client will stream
	Upload         UploadID   // PutPart: multipart upload job
	Part           uint32     // PutPart/GetPart: part index (0-based)
	Data           []byte     // PutPart: part payload
	Final          bool       // PutPart: last part of the upload
	FromGen        Generation // GetDelta: generation known to the client
	ToUser         UserID     // CreateShare: grantee
	ReadOnly       bool       // CreateShare: access level
	Share          ShareID    // AcceptShare: grant being accepted

	// Attempt counts client retries of this request (0 = first try). The
	// server's fault counters use it to tell retried traffic apart.
	Attempt uint8
	// Delay is the client's accumulated retry backoff. Wall-clock transports
	// realize it by actually waiting; the in-process simulator transport
	// instead advances the request's virtual timestamp by it, so a retried
	// request draws a fresh fault decision at a later virtual instant.
	Delay time.Duration
}

// Marshal encodes the request body (without the frame header).
func (q *Request) Marshal() []byte {
	w := wire.NewWriter(64 + len(q.Data) + len(q.Name) + len(q.Token))
	w.Uvarint(q.ID)
	w.Byte(byte(q.Op))
	w.String(q.Token)
	w.Uvarint(uint64(q.Volume))
	w.Uvarint(uint64(q.Node))
	w.Uvarint(uint64(q.Parent))
	w.String(q.Name)
	w.Bytes_(q.Hash[:])
	w.Uvarint(q.Size)
	w.Uvarint(q.CompressedSize)
	w.Uvarint(uint64(q.Upload))
	w.Uvarint(uint64(q.Part))
	w.Bytes_(q.Data)
	w.Bool(q.Final)
	w.Uvarint(uint64(q.FromGen))
	w.Uvarint(uint64(q.ToUser))
	w.Bool(q.ReadOnly)
	w.Uvarint(uint64(q.Share))
	w.Byte(q.Attempt)
	w.Uvarint(uint64(q.Delay))
	return w.Bytes()
}

// UnmarshalRequest decodes a request body.
func UnmarshalRequest(buf []byte) (*Request, error) {
	r := wire.NewReader(buf)
	q := &Request{}
	q.ID = r.Uvarint()
	q.Op = Op(r.Byte())
	q.Token = r.String()
	q.Volume = VolumeID(r.Uvarint())
	q.Node = NodeID(r.Uvarint())
	q.Parent = NodeID(r.Uvarint())
	q.Name = r.String()
	copy(q.Hash[:], r.Bytes())
	q.Size = r.Uvarint()
	q.CompressedSize = r.Uvarint()
	q.Upload = UploadID(r.Uvarint())
	q.Part = uint32(r.Uvarint())
	if d := r.Bytes(); len(d) > 0 {
		q.Data = append([]byte(nil), d...) // decouple from the frame buffer
	}
	q.Final = r.Bool()
	q.FromGen = Generation(r.Uvarint())
	q.ToUser = UserID(r.Uvarint())
	q.ReadOnly = r.Bool()
	q.Share = ShareID(r.Uvarint())
	q.Attempt = r.Byte()
	q.Delay = time.Duration(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("protocol: decoding request: %w", err)
	}
	return q, nil
}

// Response is the server-to-client envelope, correlated to a request by ID.
type Response struct {
	ID     uint64
	Status Status

	Session    SessionID    // Authenticate
	User       UserID       // Authenticate
	Volumes    []VolumeInfo // ListVolumes
	Shares     []ShareInfo  // ListShares / CreateShare
	Node       NodeInfo     // Make*/Move/GetContent metadata
	Deltas     []DeltaEntry // GetDelta
	Generation Generation   // post-mutation volume generation
	Reused     bool         // PutContent: content deduplicated, no transfer needed
	Rescan     bool         // GetDelta: log truncated; Deltas carry a full listing
	Upload     UploadID     // PutContent: upload job for the parts
	Parts      uint32       // GetContent: number of parts to fetch
	Hash       Hash         // GetContent metadata
	Size       uint64       // GetContent metadata
	Data       []byte       // GetPart payload
}

func marshalVolumeInfo(w *wire.Writer, v VolumeInfo) {
	w.Uvarint(uint64(v.ID))
	w.Byte(byte(v.Type))
	w.String(v.Path)
	w.Uvarint(uint64(v.Generation))
	w.Uvarint(uint64(v.Owner))
}

func unmarshalVolumeInfo(r *wire.Reader) VolumeInfo {
	return VolumeInfo{
		ID:         VolumeID(r.Uvarint()),
		Type:       VolumeType(r.Byte()),
		Path:       r.String(),
		Generation: Generation(r.Uvarint()),
		Owner:      UserID(r.Uvarint()),
	}
}

func marshalShareInfo(w *wire.Writer, s ShareInfo) {
	w.Uvarint(uint64(s.ID))
	w.Uvarint(uint64(s.Volume))
	w.Uvarint(uint64(s.SharedBy))
	w.Uvarint(uint64(s.SharedTo))
	w.String(s.Name)
	w.Bool(s.ReadOnly)
	w.Bool(s.Accepted)
}

func unmarshalShareInfo(r *wire.Reader) ShareInfo {
	return ShareInfo{
		ID:       ShareID(r.Uvarint()),
		Volume:   VolumeID(r.Uvarint()),
		SharedBy: UserID(r.Uvarint()),
		SharedTo: UserID(r.Uvarint()),
		Name:     r.String(),
		ReadOnly: r.Bool(),
		Accepted: r.Bool(),
	}
}

func marshalNodeInfo(w *wire.Writer, n NodeInfo) {
	w.Uvarint(uint64(n.ID))
	w.Uvarint(uint64(n.Volume))
	w.Uvarint(uint64(n.Parent))
	w.Byte(byte(n.Kind))
	w.String(n.Name)
	w.Bytes_(n.Hash[:])
	w.Uvarint(n.Size)
	w.Uvarint(uint64(n.Generation))
}

func unmarshalNodeInfo(r *wire.Reader) NodeInfo {
	n := NodeInfo{
		ID:     NodeID(r.Uvarint()),
		Volume: VolumeID(r.Uvarint()),
		Parent: NodeID(r.Uvarint()),
		Kind:   NodeKind(r.Byte()),
		Name:   r.String(),
	}
	copy(n.Hash[:], r.Bytes())
	n.Size = r.Uvarint()
	n.Generation = Generation(r.Uvarint())
	return n
}

// Marshal encodes the response body (without the frame header).
func (p *Response) Marshal() []byte {
	w := wire.NewWriter(128 + len(p.Data))
	w.Uvarint(p.ID)
	w.Byte(byte(p.Status))
	w.Uvarint(uint64(p.Session))
	w.Uvarint(uint64(p.User))
	w.Uvarint(uint64(len(p.Volumes)))
	for _, v := range p.Volumes {
		marshalVolumeInfo(w, v)
	}
	w.Uvarint(uint64(len(p.Shares)))
	for _, s := range p.Shares {
		marshalShareInfo(w, s)
	}
	marshalNodeInfo(w, p.Node)
	w.Uvarint(uint64(len(p.Deltas)))
	for _, d := range p.Deltas {
		marshalNodeInfo(w, d.Node)
		w.Bool(d.Deleted)
	}
	w.Uvarint(uint64(p.Generation))
	w.Bool(p.Reused)
	w.Bool(p.Rescan)
	w.Uvarint(uint64(p.Upload))
	w.Uvarint(uint64(p.Parts))
	w.Bytes_(p.Hash[:])
	w.Uvarint(p.Size)
	w.Bytes_(p.Data)
	return w.Bytes()
}

// maxRepeated bounds decoded slice lengths; a hostile length prefix cannot
// force a huge allocation (each element also costs wire bytes, so honest
// messages stay far below this).
const maxRepeated = 1 << 20

// UnmarshalResponse decodes a response body.
func UnmarshalResponse(buf []byte) (*Response, error) {
	r := wire.NewReader(buf)
	p := &Response{}
	p.ID = r.Uvarint()
	p.Status = Status(r.Byte())
	p.Session = SessionID(r.Uvarint())
	p.User = UserID(r.Uvarint())
	nv := r.Uvarint()
	if nv > maxRepeated {
		return nil, fmt.Errorf("protocol: volume list of %d entries", nv)
	}
	for i := uint64(0); i < nv && r.Err() == nil; i++ {
		p.Volumes = append(p.Volumes, unmarshalVolumeInfo(r))
	}
	ns := r.Uvarint()
	if ns > maxRepeated {
		return nil, fmt.Errorf("protocol: share list of %d entries", ns)
	}
	for i := uint64(0); i < ns && r.Err() == nil; i++ {
		p.Shares = append(p.Shares, unmarshalShareInfo(r))
	}
	p.Node = unmarshalNodeInfo(r)
	nd := r.Uvarint()
	if nd > maxRepeated {
		return nil, fmt.Errorf("protocol: delta list of %d entries", nd)
	}
	for i := uint64(0); i < nd && r.Err() == nil; i++ {
		var d DeltaEntry
		d.Node = unmarshalNodeInfo(r)
		d.Deleted = r.Bool()
		p.Deltas = append(p.Deltas, d)
	}
	p.Generation = Generation(r.Uvarint())
	p.Reused = r.Bool()
	p.Rescan = r.Bool()
	p.Upload = UploadID(r.Uvarint())
	p.Parts = uint32(r.Uvarint())
	copy(p.Hash[:], r.Bytes())
	p.Size = r.Uvarint()
	if d := r.Bytes(); len(d) > 0 {
		p.Data = append([]byte(nil), d...)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("protocol: decoding response: %w", err)
	}
	return p, nil
}

// PushEvent enumerates unsolicited server notifications (§3.4.2).
type PushEvent uint8

// Push events.
const (
	// PushVolumeChanged tells the client a volume advanced to a new
	// generation (another device wrote to it); the client reacts with
	// GetDelta and downloads what changed.
	PushVolumeChanged PushEvent = iota
	// PushShareOffered tells the client another user shared a volume with it.
	PushShareOffered
	// PushShareDeleted tells the client a share was revoked.
	PushShareDeleted
)

// String implements fmt.Stringer.
func (e PushEvent) String() string {
	switch e {
	case PushVolumeChanged:
		return "volume-changed"
	case PushShareOffered:
		return "share-offered"
	case PushShareDeleted:
		return "share-deleted"
	default:
		return fmt.Sprintf("push(%d)", uint8(e))
	}
}

// Push is the server-to-client notification envelope.
type Push struct {
	Event      PushEvent
	Volume     VolumeID
	Generation Generation
	Share      ShareInfo
}

// Marshal encodes the push body.
func (n *Push) Marshal() []byte {
	w := wire.NewWriter(64)
	w.Byte(byte(n.Event))
	w.Uvarint(uint64(n.Volume))
	w.Uvarint(uint64(n.Generation))
	marshalShareInfo(w, n.Share)
	return w.Bytes()
}

// UnmarshalPush decodes a push body.
func UnmarshalPush(buf []byte) (*Push, error) {
	r := wire.NewReader(buf)
	n := &Push{}
	n.Event = PushEvent(r.Byte())
	n.Volume = VolumeID(r.Uvarint())
	n.Generation = Generation(r.Uvarint())
	n.Share = unmarshalShareInfo(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("protocol: decoding push: %w", err)
	}
	return n, nil
}
