package protocol

import "time"

// Cost accumulates the simulated back-end service time charged to one
// request: every DAL RPC adds its sampled service time, and data operations
// add their data-store transfer estimates. One Cost lives for exactly one
// request — the API server allocates it when dispatch starts and reads the
// total when the response is written — which replaces the old convention of
// every RPC-tier method returning a time.Duration for the caller to thread
// by hand.
//
// A nil *Cost is valid and discards all charges, for callers (benchmarks,
// calibration harnesses) that drive the RPC tier without a request context.
// Cost is not synchronized: a request is served by one goroutine.
type Cost struct {
	d time.Duration
}

// Add charges d to the accumulator. Negative charges are ignored; a nil
// receiver discards the charge.
func (c *Cost) Add(d time.Duration) {
	if c == nil || d < 0 {
		return
	}
	c.d += d
}

// Total returns the accumulated service time.
func (c *Cost) Total() time.Duration {
	if c == nil {
		return 0
	}
	return c.d
}
