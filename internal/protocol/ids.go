// Package protocol defines the vocabulary of the U1 storage protocol: entity
// identifiers (§3.1.1), the client-facing API operations of Table 2, the DAL
// RPC operations of Tables 2 and 4, status codes, and the binary message
// encodings exchanged between desktop clients and API servers.
package protocol

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
)

// UserID identifies a U1 account. The back-end routes every metadata
// operation to a database shard derived from this identifier (§3.4).
type UserID uint64

// VolumeID identifies a volume: a container of nodes. Volume 0 of each user
// is the root volume created at client installation (§3.1.1).
type VolumeID uint64

// NodeID identifies a node (file or directory) within the metadata store.
// The real service used UUIDs generated in the back-end; 64-bit sequence
// numbers preserve the same uniqueness contract with cheaper keys.
type NodeID uint64

// SessionID identifies one storage-protocol session (one TCP connection of a
// desktop client). Sessions do not expire on their own; they end when the
// client disconnects or the server process goes down (§3.1.1).
type SessionID uint64

// ShareID identifies a sharing grant of a volume to another user.
type ShareID uint64

// UploadID identifies a server-side uploadjob tracking a multipart upload
// (appendix A).
type UploadID uint64

// Generation is a per-volume logical clock. Every mutation increments the
// volume generation; clients synchronize by asking for the delta between
// their local generation and the server's (GetDelta, §3.4.2).
type Generation uint64

// String renders the identifier in the u-<n> form used in trace logs.
func (u UserID) String() string { return fmt.Sprintf("u-%d", uint64(u)) }

// Hash is a SHA-1 content hash. Desktop clients send the hash before
// uploading so the server can apply file-based cross-user deduplication
// (§3.3).
type Hash [sha1.Size]byte

// HashBytes returns the SHA-1 hash of data.
func HashBytes(data []byte) Hash { return sha1.Sum(data) }

// Hex returns the lowercase hexadecimal form of the hash.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// String implements fmt.Stringer with the sha1: prefix used in U1 logs.
func (h Hash) String() string { return "sha1:" + h.Hex() }

// IsZero reports whether the hash is the zero value (no content).
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash decodes a 40-char hex string into a Hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("protocol: bad hash %q: %w", s, err)
	}
	if len(b) != sha1.Size {
		return h, fmt.Errorf("protocol: hash %q has %d bytes, want %d", s, len(b), sha1.Size)
	}
	copy(h[:], b)
	return h, nil
}

// VolumeType distinguishes the three volume flavors of §3.1.1.
type VolumeType uint8

// Volume types.
const (
	VolumeRoot   VolumeType = iota // predefined volume with id 0
	VolumeUDF                      // user-defined folder
	VolumeShared                   // sub-volume of another user shared to this one
)

// String implements fmt.Stringer.
func (v VolumeType) String() string {
	switch v {
	case VolumeRoot:
		return "root"
	case VolumeUDF:
		return "udf"
	case VolumeShared:
		return "shared"
	default:
		return fmt.Sprintf("volume(%d)", uint8(v))
	}
}

// NodeKind distinguishes files from directories.
type NodeKind uint8

// Node kinds.
const (
	KindFile NodeKind = iota
	KindDir
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindDir:
		return "dir"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// VolumeInfo is the client-visible description of a volume.
type VolumeInfo struct {
	ID         VolumeID
	Type       VolumeType
	Path       string // mount path, e.g. "~/Ubuntu One" or the UDF path
	Generation Generation
	Owner      UserID
}

// ShareInfo describes a sharing grant. SharedBy is the owner of the volume,
// SharedTo the user granted access (Table 2, ListShares).
type ShareInfo struct {
	ID       ShareID
	Volume   VolumeID
	SharedBy UserID
	SharedTo UserID
	Name     string
	ReadOnly bool
	Accepted bool
}

// NodeInfo is the client-visible description of a node.
type NodeInfo struct {
	ID         NodeID
	Volume     VolumeID
	Parent     NodeID
	Kind       NodeKind
	Name       string
	Hash       Hash
	Size       uint64
	Generation Generation // volume generation at which this version was written
}

// DeltaEntry is one element of a GetDelta response: the state of a node at a
// generation, or its deletion.
type DeltaEntry struct {
	Node    NodeInfo
	Deleted bool
}
