package protocol

import (
	"errors"
	"fmt"
)

// Status is the result code carried on every response.
type Status uint8

// Response status codes.
const (
	StatusOK Status = iota
	StatusAuthFailed
	StatusNotFound
	StatusExists
	StatusPermission
	StatusBadRequest
	StatusUnavailable
	StatusConflict
	StatusQuota
	StatusCancelled
	StatusOverloaded

	numStatuses = int(StatusOverloaded) + 1
)

// Statuses returns every defined status code in declaration order, for
// classification tables that must cover the whole vocabulary (a new status
// shows up here and forces every such table to take a position on it).
func Statuses() []Status {
	out := make([]Status, numStatuses)
	for i := range out {
		out[i] = Status(i)
	}
	return out
}

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAuthFailed:
		return "auth failed"
	case StatusNotFound:
		return "not found"
	case StatusExists:
		return "already exists"
	case StatusPermission:
		return "permission denied"
	case StatusBadRequest:
		return "bad request"
	case StatusUnavailable:
		return "unavailable"
	case StatusConflict:
		return "conflict"
	case StatusQuota:
		return "quota exceeded"
	case StatusCancelled:
		return "cancelled"
	case StatusOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Sentinel errors mirroring the status codes; server components return these
// and the API layer maps them onto the wire with StatusOf.
var (
	ErrAuthFailed  = errors.New("protocol: authentication failed")
	ErrNotFound    = errors.New("protocol: not found")
	ErrExists      = errors.New("protocol: already exists")
	ErrPermission  = errors.New("protocol: permission denied")
	ErrBadRequest  = errors.New("protocol: bad request")
	ErrUnavailable = errors.New("protocol: service unavailable")
	ErrConflict    = errors.New("protocol: conflict")
	ErrQuota       = errors.New("protocol: quota exceeded")
	// ErrCancelled marks a request dropped before its handler ran: the
	// client disconnected mid-pipeline or the request's deadline passed.
	ErrCancelled = errors.New("protocol: request cancelled")
	// ErrOverloaded marks a request shed by admission control before its
	// handler ran (the §5.4 provider-side load-shedding response). Clients
	// should back off and retry; the session itself stays valid.
	ErrOverloaded = errors.New("protocol: server overloaded")
)

// StatusOf maps an error to its wire status. Unknown errors map to
// StatusUnavailable, never leaking internals to clients.
func StatusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrAuthFailed):
		return StatusAuthFailed
	case errors.Is(err, ErrNotFound):
		return StatusNotFound
	case errors.Is(err, ErrExists):
		return StatusExists
	case errors.Is(err, ErrPermission):
		return StatusPermission
	case errors.Is(err, ErrBadRequest):
		return StatusBadRequest
	case errors.Is(err, ErrConflict):
		return StatusConflict
	case errors.Is(err, ErrQuota):
		return StatusQuota
	case errors.Is(err, ErrCancelled):
		return StatusCancelled
	case errors.Is(err, ErrOverloaded):
		return StatusOverloaded
	default:
		return StatusUnavailable
	}
}

// Err converts a non-OK status back into its sentinel error; StatusOK yields
// nil. Round-tripping StatusOf and Err preserves error identity for the
// sentinel set.
func (s Status) Err() error {
	switch s {
	case StatusOK:
		return nil
	case StatusAuthFailed:
		return ErrAuthFailed
	case StatusNotFound:
		return ErrNotFound
	case StatusExists:
		return ErrExists
	case StatusPermission:
		return ErrPermission
	case StatusBadRequest:
		return ErrBadRequest
	case StatusConflict:
		return ErrConflict
	case StatusQuota:
		return ErrQuota
	case StatusCancelled:
		return ErrCancelled
	case StatusOverloaded:
		return ErrOverloaded
	default:
		return ErrUnavailable
	}
}
