package protocol

import "fmt"

// Op enumerates the client-facing API operations of Table 2. The trace
// analysis (Figs. 7a, 8) classifies requests by this vocabulary.
type Op uint8

// API operations (Table 2).
const (
	OpAuthenticate Op = iota // create a session from an OAuth token
	OpListVolumes            // list all volumes of a user
	OpListShares             // list volumes of type shared
	OpPutContent             // upload file contents (data operation)
	OpGetContent             // download file contents (data operation)
	OpMakeFile               // create a file node ("touch", precedes upload)
	OpMakeDir                // create a directory node
	OpUnlink                 // delete a file or directory
	OpMove                   // move/rename a node
	OpCreateUDF              // create a user-defined volume
	OpDeleteVolume           // delete a volume and contained nodes
	OpGetDelta               // fetch changes since a known generation
	OpCreateShare            // offer a volume to another user
	OpAcceptShare            // accept an offered share
	OpPutPart                // stream one part of a multipart upload
	OpGetPart                // fetch one part of a large download
	OpPing                   // keepalive
	OpCloseSession           // explicit session termination

	numOps = int(OpCloseSession) + 1
)

var opNames = [numOps]string{
	OpAuthenticate: "Authenticate",
	OpListVolumes:  "ListVolumes",
	OpListShares:   "ListShares",
	OpPutContent:   "Upload",
	OpGetContent:   "Download",
	OpMakeFile:     "MakeFile",
	OpMakeDir:      "MakeDir",
	OpUnlink:       "Unlink",
	OpMove:         "Move",
	OpCreateUDF:    "CreateUDF",
	OpDeleteVolume: "DeleteVolume",
	OpGetDelta:     "GetDelta",
	OpCreateShare:  "CreateShare",
	OpAcceptShare:  "AcceptShare",
	OpPutPart:      "PutPart",
	OpGetPart:      "GetPart",
	OpPing:         "Ping",
	OpCloseSession: "CloseSession",
}

// String implements fmt.Stringer using the operation names of the paper's
// figures (uploads and downloads are labeled Upload/Download in Fig. 7a).
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Ops returns all operations in declaration order, for analyses that iterate
// the vocabulary.
func Ops() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// ParseOp returns the operation with the given name as produced by String.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("protocol: unknown operation %q", s)
}

// IsData reports whether the operation is a data-management operation
// (involves a transfer to/from the data store) as opposed to a metadata
// operation handled entirely by the synchronization service (§3.1.2). The
// active-vs-online user distinction of §6.1 also counts volume and node
// mutations as data management.
func (o Op) IsData() bool {
	switch o {
	case OpPutContent, OpGetContent, OpPutPart, OpGetPart:
		return true
	default:
		return false
	}
}

// IsDataManagement reports whether the op counts as "data management" for
// the §6.1 active-user definition: transfers plus mutations of volumes and
// nodes (uploading a file, creating a directory, deleting, moving...).
func (o Op) IsDataManagement() bool {
	switch o {
	case OpPutContent, OpGetContent, OpMakeFile, OpMakeDir, OpUnlink,
		OpMove, OpCreateUDF, OpDeleteVolume, OpCreateShare:
		return true
	default:
		return false
	}
}

// IsSessionManagement reports whether the op manages the session lifecycle
// (the request class that spikes during the DDoS events of §5.4).
func (o Op) IsSessionManagement() bool {
	return o == OpAuthenticate || o == OpPing || o == OpCloseSession
}
