// Package gateway implements the system gateway of §3.2: the visible
// endpoint users connect to (HAProxy in the U1 deployment). It provides two
// pieces: a Balancer implementing the placement rule documented in §4 — "a
// session starts in the least loaded machine and lives in the same node until
// it finishes" — and a TCP Proxy that applies the rule to real connections.
//
// The balancer scales the way HAProxy-style front-ends do: its state is S
// independently locked shard heaps. With S = 1 placement is the exact
// global least-loaded rule (one min-heap, deterministic (load, name)
// tie-break). With S > 1, Acquire samples two distinct shards from a
// lock-free splitmix64 source and takes the less-loaded of the two shard
// roots — the power-of-two-choices result that keeps the maximum load within
// a constant factor of the global minimum while placement decisions on
// different shards proceed in parallel instead of serializing on one mutex.
package gateway

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"u1/internal/dist"
	"u1/internal/metrics"
)

// ErrNoBackends is returned when no backend is registered.
var ErrNoBackends = errors.New("gateway: no backends registered")

// Lease is one placed session: the backend it lives on and the balancer
// shard that owns the backend's heap slot. Release returns the session to
// the owning shard without re-hashing or searching.
type Lease struct {
	Backend string
	shard   int
}

// balancerMetrics holds the gateway's registered handles: session placement
// volume, the live session gauge, and the cost of each routing decision.
type balancerMetrics struct {
	placed       *metrics.Counter
	activeConns  *metrics.Gauge
	placeSeconds *metrics.Histogram
	reg          *metrics.Registry
}

// backendSlot is one backend's entry in its shard's min-heap. pos tracks the
// slot's index in the heap array so Release and RemoveBackend can sift from
// the middle without searching.
type backendSlot struct {
	name   string
	load   int
	pos    int
	placed *metrics.Counter // per-backend placement counter (nil-safe handle)
}

// balancerShard is one independently locked heap of backends, ordered by
// (load, name) so the root is always the shard's least-loaded backend.
type balancerShard struct {
	mu     sync.Mutex
	heap   []*backendSlot
	byName map[string]*backendSlot
	total  map[string]uint64
}

func (s *balancerShard) less(i, j int) bool {
	return rootLess(s.heap[i], s.heap[j])
}

func (s *balancerShard) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].pos = i
	s.heap[j].pos = j
}

func (s *balancerShard) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *balancerShard) siftDown(i int) {
	n := len(s.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && s.less(left, smallest) {
			smallest = left
		}
		if right < n && s.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}

// Balancer assigns sessions to backends and tracks active session counts. It
// is safe for concurrent use; see the package comment for the sharding and
// power-of-two-choices placement model.
type Balancer struct {
	shards []*balancerShard
	// rng is the lock-free splitmix64 state behind shard sampling (the PR 2
	// idiom: one atomic add per draw, no lock on the placement path).
	rng atomic.Uint64
	// m holds the metric handles behind an atomic pointer so Instrument can
	// attach a registry while placements are in flight (the PR 3 dynamic
	// mid-traffic attach pattern) without a lock on the placement path.
	m atomic.Pointer[balancerMetrics]
}

// NewBalancer creates a single-shard balancer over the given backend names:
// the exact deterministic least-loaded rule of §4.
func NewBalancer(backends ...string) *Balancer {
	return NewShardedBalancer(1, backends...)
}

// NewShardedBalancer creates a balancer with the given shard count (min 1).
// Backends are assigned to shards by a stable hash of their name, so the
// shard layout is independent of registration order.
func NewShardedBalancer(shards int, backends ...string) *Balancer {
	if shards < 1 {
		shards = 1
	}
	b := &Balancer{shards: make([]*balancerShard, shards)}
	for i := range b.shards {
		b.shards[i] = &balancerShard{
			byName: make(map[string]*backendSlot),
			total:  make(map[string]uint64),
		}
	}
	b.Instrument(nil)
	for _, name := range backends {
		b.AddBackend(name)
	}
	return b
}

// NumShards returns the balancer's shard count.
func (b *Balancer) NumShards() int { return len(b.shards) }

// shardOf maps a backend name to its owning shard: FNV over the name,
// scrambled through the splitmix64 mix so shard counts with small factors
// still spread evenly.
func (b *Balancer) shardOf(name string) int {
	if len(b.shards) == 1 {
		return 0
	}
	h := fnv.New64a()
	io.WriteString(h, name) //nolint:errcheck
	return int(dist.Splitmix64(h.Sum64()) % uint64(len(b.shards)))
}

// Instrument registers the balancer's placement metrics on reg. Safe to
// call while traffic is in flight (placements read the handles through an
// atomic pointer); a nil registry leaves the balancer unobserved. Decisions
// concurrent with the swap may record against the old registry.
func (b *Balancer) Instrument(reg *metrics.Registry) {
	b.m.Store(&balancerMetrics{
		placed:       reg.Counter("gateway.sessions.placed"),
		activeConns:  reg.Gauge("gateway.sessions.active"),
		placeSeconds: reg.Histogram("gateway.place.seconds"),
		reg:          reg,
	})
	for _, sh := range b.shards {
		sh.mu.Lock()
		for _, s := range sh.byName {
			s.placed = reg.Counter("gateway.backend." + s.name + ".placed")
		}
		sh.mu.Unlock()
	}
}

// AddBackend registers a backend (API server process) with zero load on its
// owning shard.
func (b *Balancer) AddBackend(name string) {
	sh := b.shards[b.shardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.byName[name]; ok {
		return
	}
	s := &backendSlot{
		name:   name,
		pos:    len(sh.heap),
		placed: b.m.Load().reg.Counter("gateway.backend." + name + ".placed"),
	}
	sh.byName[name] = s
	sh.heap = append(sh.heap, s)
	sh.siftUp(s.pos)
}

// RemoveBackend deregisters a backend; its sessions are assumed terminated.
func (b *Balancer) RemoveBackend(name string) {
	sh := b.shards[b.shardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.byName[name]
	if !ok {
		return
	}
	delete(sh.byName, name)
	// Capture the hole's index before swapping: swap() rewrites s.pos to
	// last, so sifting at s.pos afterwards would skip the swapped-in slot
	// and break the heap invariant.
	i := s.pos
	last := len(sh.heap) - 1
	if i != last {
		sh.swap(i, last)
	}
	sh.heap[last] = nil
	sh.heap = sh.heap[:last]
	if i < last {
		sh.siftDown(i)
		sh.siftUp(i)
	}
}

// acquireFrom takes the root of shard idx. Caller holds the shard lock.
func (b *Balancer) acquireFrom(idx int) Lease {
	sh := b.shards[idx]
	s := sh.heap[0]
	s.load++
	sh.siftDown(0)
	sh.total[s.name]++
	s.placed.Inc()
	return Lease{Backend: s.name, shard: idx}
}

// pickTwo draws two distinct shard indices from the lock-free source.
func (b *Balancer) pickTwo() (int, int) {
	n := len(b.shards)
	r := dist.Splitmix64(b.rng.Add(dist.Splitmix64Gamma))
	i := int(r % uint64(n))
	j := int((r >> 32) % uint64(n))
	if j == i {
		j = (j + 1) % n
	}
	return i, j
}

// rootLess is the one placement comparator — (load, name), so ties break
// deterministically — used both inside each shard's heap and between shard
// roots in the two-choice comparison (callers hold the shard locks involved).
func rootLess(a, b *backendSlot) bool {
	return a.load < b.load || (a.load == b.load && a.name < b.name)
}

// Acquire picks a backend, increments its session count and returns the
// lease. With one shard the choice is the exact least-loaded backend (ties
// broken deterministically by name, so tests are stable); with several it is
// the less-loaded of two randomly sampled shard roots.
func (b *Balancer) Acquire() (Lease, error) {
	//u1:allow wallclock placement latency measured in host time; observability only
	start := time.Now()
	var lease Lease
	if len(b.shards) == 1 {
		sh := b.shards[0]
		sh.mu.Lock()
		if len(sh.heap) == 0 {
			sh.mu.Unlock()
			return Lease{}, ErrNoBackends
		}
		lease = b.acquireFrom(0)
		sh.mu.Unlock()
	} else {
		var ok bool
		lease, ok = b.acquireTwoChoices()
		if !ok {
			return Lease{}, ErrNoBackends
		}
	}
	m := b.m.Load()
	m.placed.Inc()
	m.activeConns.Inc()
	//u1:allow wallclock placement latency measured in host time; observability only
	m.placeSeconds.Observe(time.Since(start).Seconds())
	return lease, nil
}

// acquireTwoChoices implements power-of-two-choices across shards: sample
// two distinct shards, lock both in index order (no deadlock), take the
// less-loaded root. If both samples are empty (name-hash imbalance or
// backend removal), fall back to a linear probe for any non-empty shard.
func (b *Balancer) acquireTwoChoices() (Lease, bool) {
	i, j := b.pickTwo()
	if i > j {
		i, j = j, i
	}
	if lease, ok := b.tryPair(i, j); ok {
		return lease, true
	}
	for k := range b.shards {
		sh := b.shards[k]
		sh.mu.Lock()
		if len(sh.heap) > 0 {
			lease := b.acquireFrom(k)
			sh.mu.Unlock()
			return lease, true
		}
		sh.mu.Unlock()
	}
	return Lease{}, false
}

// tryPair locks shards i < j (the callers' pickTwo contract: distinct,
// ascending — ascending is what makes the double lock deadlock-free) and
// takes the less-loaded of their roots.
func (b *Balancer) tryPair(i, j int) (Lease, bool) {
	shi, shj := b.shards[i], b.shards[j]
	shi.mu.Lock()
	shj.mu.Lock()
	defer func() {
		shj.mu.Unlock()
		shi.mu.Unlock()
	}()
	iOK, jOK := len(shi.heap) > 0, len(shj.heap) > 0
	switch {
	case iOK && jOK:
		if rootLess(shj.heap[0], shi.heap[0]) {
			return b.acquireFrom(j), true
		}
		return b.acquireFrom(i), true
	case iOK:
		return b.acquireFrom(i), true
	case jOK:
		return b.acquireFrom(j), true
	}
	return Lease{}, false
}

// Release ends the leased session on its owning shard.
func (b *Balancer) Release(l Lease) {
	if l.Backend == "" {
		return
	}
	sh := b.shards[l.shard]
	sh.mu.Lock()
	if s, ok := sh.byName[l.Backend]; ok && s.load > 0 {
		s.load--
		sh.siftUp(s.pos)
		sh.mu.Unlock()
		b.m.Load().activeConns.Dec()
		return
	}
	sh.mu.Unlock()
}

// ReleaseBackend ends a session on the named backend, resolving the owning
// shard by name hash — for callers that track backends rather than leases.
func (b *Balancer) ReleaseBackend(name string) {
	b.Release(Lease{Backend: name, shard: b.shardOf(name)})
}

// Active returns a snapshot of active sessions per backend.
func (b *Balancer) Active() map[string]int {
	out := make(map[string]int)
	for _, sh := range b.shards {
		sh.mu.Lock()
		for name, s := range sh.byName {
			out[name] = s.load
		}
		sh.mu.Unlock()
	}
	return out
}

// Totals returns cumulative sessions placed per backend.
func (b *Balancer) Totals() map[string]uint64 {
	out := make(map[string]uint64)
	for _, sh := range b.shards {
		sh.mu.Lock()
		for k, v := range sh.total {
			out[k] = v
		}
		sh.mu.Unlock()
	}
	return out
}

// Proxy is a TCP pass-through applying the Balancer's placement to real
// connections: each accepted client connection is pinned to one backend
// address for its lifetime.
type Proxy struct {
	balancer *Balancer
	backends map[string]string // name → dial address

	mu sync.Mutex
	ln net.Listener
}

// NewProxy creates a single-shard proxy over named backend addresses.
func NewProxy(backends map[string]string) *Proxy {
	return NewShardedProxy(1, backends)
}

// NewShardedProxy creates a proxy whose balancer spreads the named backends
// over the given number of shards (power-of-two-choices placement).
func NewShardedProxy(shards int, backends map[string]string) *Proxy {
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	// Sorted so the balancer's shard assignment (name order decides which
	// shard each backend heap lands in) is reproducible across runs.
	sort.Strings(names)
	return &Proxy{
		balancer: NewShardedBalancer(shards, names...),
		backends: backends,
	}
}

// Balancer exposes the underlying balancer for inspection.
func (p *Proxy) Balancer() *Balancer { return p.balancer }

// Serve accepts connections on ln until it is closed. Each connection is
// placed by the balancer and copied bidirectionally.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("gateway: accept: %w", err)
		}
		go p.handle(conn)
	}
}

// Close stops the listener.
func (p *Proxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln != nil {
		return p.ln.Close()
	}
	return nil
}

func (p *Proxy) handle(client net.Conn) {
	defer client.Close()
	lease, err := p.balancer.Acquire()
	if err != nil {
		return
	}
	defer p.balancer.Release(lease)
	backend, err := net.Dial("tcp", p.backends[lease.Backend])
	if err != nil {
		return
	}
	defer backend.Close()

	done := make(chan struct{}, 2)
	go func() {
		io.Copy(backend, client)
		// Half-close towards the backend so it observes EOF.
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(client, backend)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
