// Package gateway implements the system gateway of §3.2: the visible
// endpoint users connect to (HAProxy in the U1 deployment). It provides two
// pieces: a Balancer implementing the placement rule documented in §4 — "a
// session starts in the least loaded machine and lives in the same node until
// it finishes" — and a TCP Proxy that applies the rule to real connections.
package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"u1/internal/metrics"
)

// ErrNoBackends is returned when no backend is registered.
var ErrNoBackends = errors.New("gateway: no backends registered")

// balancerMetrics holds the gateway's registered handles: session placement
// volume, the live session gauge, and the cost of each least-loaded routing
// decision.
type balancerMetrics struct {
	placed       *metrics.Counter
	activeConns  *metrics.Gauge
	placeSeconds *metrics.Histogram
	reg          *metrics.Registry
	perBackend   map[string]*metrics.Counter
}

// backendSlot is one backend's entry in the balancer's min-heap. pos tracks
// the slot's index in the heap array so Release and RemoveBackend can sift
// from the middle without searching.
type backendSlot struct {
	name string
	load int
	pos  int
}

// Balancer assigns sessions to the least-loaded backend and tracks active
// session counts. It is safe for concurrent use. Placement reads the root of
// an indexed min-heap ordered by (load, name) — maintained incrementally by
// Acquire/Release/AddBackend/RemoveBackend — so each decision is O(log n)
// with zero allocation instead of the former per-call allocate-and-sort.
type Balancer struct {
	mu     sync.Mutex
	heap   []*backendSlot
	byName map[string]*backendSlot
	total  map[string]uint64
	m      balancerMetrics
}

// NewBalancer creates a balancer over the given backend names.
func NewBalancer(backends ...string) *Balancer {
	b := &Balancer{byName: make(map[string]*backendSlot), total: make(map[string]uint64)}
	b.Instrument(nil)
	for _, name := range backends {
		b.AddBackend(name)
	}
	return b
}

// less orders the heap by (load, name): the root is always the least-loaded
// backend, with ties broken deterministically by name so tests are stable.
func (b *Balancer) less(i, j int) bool {
	si, sj := b.heap[i], b.heap[j]
	return si.load < sj.load || (si.load == sj.load && si.name < sj.name)
}

func (b *Balancer) swap(i, j int) {
	b.heap[i], b.heap[j] = b.heap[j], b.heap[i]
	b.heap[i].pos = i
	b.heap[j].pos = j
}

func (b *Balancer) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !b.less(i, parent) {
			break
		}
		b.swap(i, parent)
		i = parent
	}
}

func (b *Balancer) siftDown(i int) {
	n := len(b.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && b.less(left, smallest) {
			smallest = left
		}
		if right < n && b.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		b.swap(i, smallest)
		i = smallest
	}
}

// Instrument registers the balancer's placement metrics on reg. Call before
// traffic starts; a nil registry leaves the balancer unobserved.
func (b *Balancer) Instrument(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = balancerMetrics{
		placed:       reg.Counter("gateway.sessions.placed"),
		activeConns:  reg.Gauge("gateway.sessions.active"),
		placeSeconds: reg.Histogram("gateway.place.seconds"),
		reg:          reg,
		perBackend:   make(map[string]*metrics.Counter),
	}
}

// backendCounter resolves (caching) the per-backend placement counter.
// Caller holds b.mu.
func (b *Balancer) backendCounter(name string) *metrics.Counter {
	c, ok := b.m.perBackend[name]
	if !ok {
		c = b.m.reg.Counter("gateway.backend." + name + ".placed")
		b.m.perBackend[name] = c
	}
	return c
}

// AddBackend registers a backend (API server process) with zero load.
func (b *Balancer) AddBackend(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.byName[name]; ok {
		return
	}
	s := &backendSlot{name: name, pos: len(b.heap)}
	b.byName[name] = s
	b.heap = append(b.heap, s)
	b.siftUp(s.pos)
}

// RemoveBackend deregisters a backend; its sessions are assumed terminated.
func (b *Balancer) RemoveBackend(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.byName[name]
	if !ok {
		return
	}
	delete(b.byName, name)
	// Capture the hole's index before swapping: swap() rewrites s.pos to
	// last, so sifting at s.pos afterwards would skip the swapped-in slot
	// and break the heap invariant.
	i := s.pos
	last := len(b.heap) - 1
	if i != last {
		b.swap(i, last)
	}
	b.heap[last] = nil
	b.heap = b.heap[:last]
	if i < last {
		b.siftDown(i)
		b.siftUp(i)
	}
}

// Acquire picks the least-loaded backend, increments its session count and
// returns its name. Ties break deterministically by name so tests are
// stable.
func (b *Balancer) Acquire() (string, error) {
	start := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.heap) == 0 {
		return "", ErrNoBackends
	}
	s := b.heap[0]
	s.load++
	b.siftDown(0)
	b.total[s.name]++
	b.m.placed.Inc()
	b.m.activeConns.Inc()
	b.backendCounter(s.name).Inc()
	b.m.placeSeconds.Observe(time.Since(start).Seconds())
	return s.name, nil
}

// Release ends a session on the backend.
func (b *Balancer) Release(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.byName[name]; ok && s.load > 0 {
		s.load--
		b.siftUp(s.pos)
		b.m.activeConns.Dec()
	}
}

// Active returns a snapshot of active sessions per backend.
func (b *Balancer) Active() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.byName))
	for name, s := range b.byName {
		out[name] = s.load
	}
	return out
}

// Totals returns cumulative sessions placed per backend.
func (b *Balancer) Totals() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.total))
	for k, v := range b.total {
		out[k] = v
	}
	return out
}

// Proxy is a TCP pass-through applying the Balancer's placement to real
// connections: each accepted client connection is pinned to one backend
// address for its lifetime.
type Proxy struct {
	balancer *Balancer
	backends map[string]string // name → dial address

	mu sync.Mutex
	ln net.Listener
}

// NewProxy creates a proxy over named backend addresses.
func NewProxy(backends map[string]string) *Proxy {
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	return &Proxy{
		balancer: NewBalancer(names...),
		backends: backends,
	}
}

// Balancer exposes the underlying balancer for inspection.
func (p *Proxy) Balancer() *Balancer { return p.balancer }

// Serve accepts connections on ln until it is closed. Each connection is
// placed on the least-loaded backend and copied bidirectionally.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("gateway: accept: %w", err)
		}
		go p.handle(conn)
	}
}

// Close stops the listener.
func (p *Proxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln != nil {
		return p.ln.Close()
	}
	return nil
}

func (p *Proxy) handle(client net.Conn) {
	defer client.Close()
	name, err := p.balancer.Acquire()
	if err != nil {
		return
	}
	defer p.balancer.Release(name)
	backend, err := net.Dial("tcp", p.backends[name])
	if err != nil {
		return
	}
	defer backend.Close()

	done := make(chan struct{}, 2)
	go func() {
		io.Copy(backend, client)
		// Half-close towards the backend so it observes EOF.
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(client, backend)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
