// Package gateway implements the system gateway of §3.2: the visible
// endpoint users connect to (HAProxy in the U1 deployment). It provides two
// pieces: a Balancer implementing the placement rule documented in §4 — "a
// session starts in the least loaded machine and lives in the same node until
// it finishes" — and a TCP Proxy that applies the rule to real connections.
package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"u1/internal/metrics"
)

// ErrNoBackends is returned when no backend is registered.
var ErrNoBackends = errors.New("gateway: no backends registered")

// balancerMetrics holds the gateway's registered handles: session placement
// volume, the live session gauge, and the cost of each least-loaded routing
// decision.
type balancerMetrics struct {
	placed       *metrics.Counter
	activeConns  *metrics.Gauge
	placeSeconds *metrics.Histogram
	reg          *metrics.Registry
	perBackend   map[string]*metrics.Counter
}

// Balancer assigns sessions to the least-loaded backend and tracks active
// session counts. It is safe for concurrent use.
type Balancer struct {
	mu     sync.Mutex
	active map[string]int
	total  map[string]uint64
	m      balancerMetrics
}

// NewBalancer creates a balancer over the given backend names.
func NewBalancer(backends ...string) *Balancer {
	b := &Balancer{active: make(map[string]int), total: make(map[string]uint64)}
	b.Instrument(nil)
	for _, name := range backends {
		b.active[name] = 0
	}
	return b
}

// Instrument registers the balancer's placement metrics on reg. Call before
// traffic starts; a nil registry leaves the balancer unobserved.
func (b *Balancer) Instrument(reg *metrics.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = balancerMetrics{
		placed:       reg.Counter("gateway.sessions.placed"),
		activeConns:  reg.Gauge("gateway.sessions.active"),
		placeSeconds: reg.Histogram("gateway.place.seconds"),
		reg:          reg,
		perBackend:   make(map[string]*metrics.Counter),
	}
}

// backendCounter resolves (caching) the per-backend placement counter.
// Caller holds b.mu.
func (b *Balancer) backendCounter(name string) *metrics.Counter {
	c, ok := b.m.perBackend[name]
	if !ok {
		c = b.m.reg.Counter("gateway.backend." + name + ".placed")
		b.m.perBackend[name] = c
	}
	return c
}

// AddBackend registers a backend (API server process) with zero load.
func (b *Balancer) AddBackend(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.active[name]; !ok {
		b.active[name] = 0
	}
}

// RemoveBackend deregisters a backend; its sessions are assumed terminated.
func (b *Balancer) RemoveBackend(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.active, name)
}

// Acquire picks the least-loaded backend, increments its session count and
// returns its name. Ties break deterministically by name so tests are
// stable.
func (b *Balancer) Acquire() (string, error) {
	start := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.active) == 0 {
		return "", ErrNoBackends
	}
	names := make([]string, 0, len(b.active))
	for name := range b.active {
		names = append(names, name)
	}
	sort.Strings(names)
	best := names[0]
	for _, name := range names[1:] {
		if b.active[name] < b.active[best] {
			best = name
		}
	}
	b.active[best]++
	b.total[best]++
	b.m.placed.Inc()
	b.m.activeConns.Inc()
	b.backendCounter(best).Inc()
	b.m.placeSeconds.Observe(time.Since(start).Seconds())
	return best, nil
}

// Release ends a session on the backend.
func (b *Balancer) Release(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n, ok := b.active[name]; ok && n > 0 {
		b.active[name] = n - 1
		b.m.activeConns.Dec()
	}
}

// Active returns a snapshot of active sessions per backend.
func (b *Balancer) Active() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.active))
	for k, v := range b.active {
		out[k] = v
	}
	return out
}

// Totals returns cumulative sessions placed per backend.
func (b *Balancer) Totals() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.total))
	for k, v := range b.total {
		out[k] = v
	}
	return out
}

// Proxy is a TCP pass-through applying the Balancer's placement to real
// connections: each accepted client connection is pinned to one backend
// address for its lifetime.
type Proxy struct {
	balancer *Balancer
	backends map[string]string // name → dial address

	mu sync.Mutex
	ln net.Listener
}

// NewProxy creates a proxy over named backend addresses.
func NewProxy(backends map[string]string) *Proxy {
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	return &Proxy{
		balancer: NewBalancer(names...),
		backends: backends,
	}
}

// Balancer exposes the underlying balancer for inspection.
func (p *Proxy) Balancer() *Balancer { return p.balancer }

// Serve accepts connections on ln until it is closed. Each connection is
// placed on the least-loaded backend and copied bidirectionally.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("gateway: accept: %w", err)
		}
		go p.handle(conn)
	}
}

// Close stops the listener.
func (p *Proxy) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln != nil {
		return p.ln.Close()
	}
	return nil
}

func (p *Proxy) handle(client net.Conn) {
	defer client.Close()
	name, err := p.balancer.Acquire()
	if err != nil {
		return
	}
	defer p.balancer.Release(name)
	backend, err := net.Dial("tcp", p.backends[name])
	if err != nil {
		return
	}
	defer backend.Close()

	done := make(chan struct{}, 2)
	go func() {
		io.Copy(backend, client)
		// Half-close towards the backend so it observes EOF.
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		io.Copy(client, backend)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
