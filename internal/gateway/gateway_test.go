package gateway

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

func TestBalancerLeastLoaded(t *testing.T) {
	b := NewBalancer("a", "b", "c")
	got := make(map[string]int)
	for i := 0; i < 6; i++ {
		lease, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		got[lease.Backend]++
	}
	// Perfectly balanced: two sessions each.
	for _, name := range []string{"a", "b", "c"} {
		if got[name] != 2 {
			t.Errorf("backend %s got %d sessions", name, got[name])
		}
	}
	// Release two sessions from "b": next two placements go to b.
	b.ReleaseBackend("b")
	b.ReleaseBackend("b")
	for i := 0; i < 2; i++ {
		lease, _ := b.Acquire()
		if lease.Backend != "b" {
			t.Errorf("placement %d went to %s, want b", i, lease.Backend)
		}
	}
	if tot := b.Totals(); tot["b"] != 4 {
		t.Errorf("totals = %v", tot)
	}
}

func TestBalancerSessionsStick(t *testing.T) {
	// The balancer hands out a lease once; the session keeps it. Active
	// counts reflect held sessions.
	b := NewBalancer("a", "b")
	l1, _ := b.Acquire()
	l2, _ := b.Acquire()
	if l1.Backend == l2.Backend {
		t.Errorf("both sessions on %s", l1.Backend)
	}
	act := b.Active()
	if act["a"] != 1 || act["b"] != 1 {
		t.Errorf("active = %v", act)
	}
}

func TestBalancerEmpty(t *testing.T) {
	b := NewBalancer()
	if _, err := b.Acquire(); !errors.Is(err, ErrNoBackends) {
		t.Errorf("err = %v", err)
	}
	// Releasing unknown names must not panic or underflow.
	b.ReleaseBackend("ghost")
	b.Release(Lease{})
	b.AddBackend("x")
	b.AddBackend("x") // idempotent
	lease, err := b.Acquire()
	if err != nil || lease.Backend != "x" {
		t.Errorf("acquire = %s, %v", lease.Backend, err)
	}
	b.RemoveBackend("x")
	if _, err := b.Acquire(); err == nil {
		t.Error("acquire after removal should fail")
	}
}

func TestBalancerConcurrent(t *testing.T) {
	b := NewBalancer("a", "b", "c", "d")
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lease, err := b.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			b.Release(lease)
		}()
	}
	wg.Wait()
	for name, n := range b.Active() {
		if n != 0 {
			t.Errorf("backend %s leaked %d sessions", name, n)
		}
	}
}

// echoServer accepts connections and echoes bytes back, prefixed by its name.
func echoServer(t *testing.T, name string) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf, _ := io.ReadAll(c)
				fmt.Fprintf(c, "%s:%s", name, buf)
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestProxyEndToEnd(t *testing.T) {
	addrA, stopA := echoServer(t, "A")
	defer stopA()
	addrB, stopB := echoServer(t, "B")
	defer stopB()

	// Two shards over two backends exercises the sharded placement path on
	// real connections.
	p := NewShardedProxy(2, map[string]string{"a": addrA, "b": addrB})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()

	seen := make(map[string]bool)
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "ping%d", i)
		conn.(*net.TCPConn).CloseWrite()
		reply, err := io.ReadAll(conn)
		conn.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(reply) < 2 {
			t.Fatalf("short reply %q", reply)
		}
		seen[string(reply[0])] = true
		want := fmt.Sprintf("ping%d", i)
		if string(reply[2:]) != want {
			t.Errorf("reply = %q, want suffix %q", reply, want)
		}
	}
	if len(seen) == 0 {
		t.Error("no backend reached")
	}
	// The proxy releases each lease asynchronously after the copy loops
	// drain; poll briefly instead of racing the handler goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		var active int
		for _, n := range p.Balancer().Active() {
			active += n
		}
		if active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("balancer still tracks %d active sessions after all connections closed", active)
			break
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBalancerHeapDeterministicTies(t *testing.T) {
	// One shard must reproduce the old sort-based rule exactly: least loaded
	// wins, ties go to the lexicographically smallest name.
	b := NewBalancer("delta", "alpha", "charlie", "bravo")
	want := []string{"alpha", "bravo", "charlie", "delta", "alpha", "bravo"}
	for i, w := range want {
		lease, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if lease.Backend != w {
			t.Errorf("placement %d = %s, want %s", i, lease.Backend, w)
		}
	}
	// Releasing from the middle of the heap must restore its priority.
	b.ReleaseBackend("charlie")
	b.ReleaseBackend("charlie")
	if lease, _ := b.Acquire(); lease.Backend != "charlie" {
		t.Errorf("after releases, placement = %s, want charlie", lease.Backend)
	}
}

func TestBalancerRemoveReAdd(t *testing.T) {
	b := NewBalancer("a", "b", "c")
	for i := 0; i < 3; i++ {
		b.Acquire()
	}
	b.RemoveBackend("a")
	for i := 0; i < 2; i++ {
		lease, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if lease.Backend == "a" {
			t.Error("placed on a removed backend")
		}
	}
	b.AddBackend("a") // comes back empty: next placements pour into it
	for i := 0; i < 2; i++ {
		if lease, _ := b.Acquire(); lease.Backend != "a" {
			t.Errorf("placement %d = %s, want a (fresh backend is least loaded)", i, lease.Backend)
		}
	}
	act := b.Active()
	if act["a"] != 2 || act["b"]+act["c"] != 4 {
		t.Errorf("active = %v", act)
	}
}

func TestBalancerConcurrentChurn(t *testing.T) {
	// Acquire/Release racing RemoveBackend/AddBackend under -race. The
	// invariants: no placement lands on a backend observed as removed-for-
	// good, active counts return to zero, and a quiesced balancer places on
	// the true minimum.
	b := NewBalancer("a", "b", "c", "d")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				lease, err := b.Acquire()
				if err != nil {
					continue // all backends momentarily removed
				}
				b.Release(lease)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.RemoveBackend("d")
			b.AddBackend("d")
		}
	}()
	wg.Wait()
	for name, n := range b.Active() {
		if n != 0 {
			t.Errorf("backend %s leaked %d sessions", name, n)
		}
	}
	// Quiesced least-loaded check: skew the load, then watch placements
	// rebalance toward the minimum.
	b.Acquire() // a
	b.Acquire() // b
	lease, err := b.Acquire()
	if err != nil || (lease.Backend != "c" && lease.Backend != "d") {
		t.Errorf("placement = %s (%v), want one of the empty backends", lease.Backend, err)
	}
}

func TestBalancerLeastLoadedInvariantUnderLoad(t *testing.T) {
	// With only Acquire/Release traffic, sequential placements from a
	// balanced start must keep the spread ≤ 1 — the least-loaded rule.
	b := NewBalancer("a", "b", "c", "d", "e")
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if lease, err := b.Acquire(); err == nil {
					b.Release(lease)
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 10; i++ {
		if _, err := b.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	act := b.Active()
	min, max := 1<<30, 0
	for _, n := range act {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("sequential placements spread %v: max-min > 1", act)
	}
}

// TestBalancerMatchesReferenceModel drives random Acquire/Release/
// RemoveBackend/AddBackend sequences against a naive map-based model and
// demands identical placement at every step — the Shards=1 determinism
// contract: the sharded balancer with one shard is the old least-loaded
// heap, placement for placement.
func TestBalancerMatchesReferenceModel(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	b := NewShardedBalancer(1, names...)
	ref := make(map[string]int)
	for _, n := range names {
		ref[n] = 0
	}
	refAcquire := func() (string, bool) {
		best, ok := "", false
		for n, load := range ref {
			if !ok || load < ref[best] || (load == ref[best] && n < best) {
				best, ok = n, true
			}
		}
		if ok {
			ref[best]++
		}
		return best, ok
	}
	r := rand.New(rand.NewSource(42))
	for step := 0; step < 5000; step++ {
		switch op := r.Intn(10); {
		case op < 5: // acquire
			want, wantOK := refAcquire()
			lease, err := b.Acquire()
			if (err == nil) != wantOK || lease.Backend != want {
				t.Fatalf("step %d: Acquire = %q (%v), reference %q (%v); ref=%v",
					step, lease.Backend, err, want, wantOK, ref)
			}
		case op < 8: // release a random name (may be absent or at zero)
			n := names[r.Intn(len(names))]
			if load, ok := ref[n]; ok && load > 0 {
				ref[n]--
			}
			b.ReleaseBackend(n)
		case op < 9: // remove a random backend (root, middle, or leaf)
			n := names[r.Intn(len(names))]
			delete(ref, n)
			b.RemoveBackend(n)
		default: // add it back with zero load
			n := names[r.Intn(len(names))]
			if _, ok := ref[n]; !ok {
				ref[n] = 0
			}
			b.AddBackend(n)
		}
		if act := b.Active(); len(act) != len(ref) {
			t.Fatalf("step %d: active set %v, reference %v", step, act, ref)
		}
	}
}

// --- Sharded (power-of-two-choices) balancer ---

// shardedNames builds a backend fleet large enough that every shard is
// populated with high probability.
func shardedNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("backend-%02d", i)
	}
	return names
}

func TestShardedBalancerPlacesEverywhere(t *testing.T) {
	b := NewShardedBalancer(4, shardedNames(16)...)
	if b.NumShards() != 4 {
		t.Fatalf("shards = %d", b.NumShards())
	}
	leases := make([]Lease, 0, 1600)
	for i := 0; i < 1600; i++ {
		lease, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, lease)
	}
	act := b.Active()
	if len(act) != 16 {
		t.Fatalf("active set %v", act)
	}
	// Power-of-two-choices keeps the load within a small factor of the
	// mean (100 sessions per backend here); a single random choice would
	// show √n-scale outliers, a broken heap far worse.
	for name, n := range act {
		if n < 50 || n > 200 {
			t.Errorf("backend %s holds %d sessions, want ≈100", name, n)
		}
	}
	// Leases release back to the owning shard: everything drains to zero.
	for _, l := range leases {
		b.Release(l)
	}
	for name, n := range b.Active() {
		if n != 0 {
			t.Errorf("backend %s leaked %d sessions after release", name, n)
		}
	}
}

func TestShardedBalancerEmptyShards(t *testing.T) {
	// More shards than backends: some shards are empty and the sampler must
	// fall through to the populated ones.
	b := NewShardedBalancer(8, "a", "b")
	got := make(map[string]int)
	for i := 0; i < 64; i++ {
		lease, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		got[lease.Backend]++
	}
	if got["a"]+got["b"] != 64 || got["a"] == 0 || got["b"] == 0 {
		t.Errorf("placements = %v, want both backends used", got)
	}
	// Remove every backend: Acquire must fail cleanly, not spin or panic.
	b.RemoveBackend("a")
	b.RemoveBackend("b")
	if _, err := b.Acquire(); !errors.Is(err, ErrNoBackends) {
		t.Errorf("err = %v, want ErrNoBackends", err)
	}
}

func TestShardedBalancerConcurrent(t *testing.T) {
	b := NewShardedBalancer(4, shardedNames(12)...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := make([]Lease, 0, 8)
			for i := 0; i < 500; i++ {
				lease, err := b.Acquire()
				if err != nil {
					t.Error(err)
					return
				}
				held = append(held, lease)
				if len(held) == 8 {
					for _, l := range held {
						b.Release(l)
					}
					held = held[:0]
				}
			}
			for _, l := range held {
				b.Release(l)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.RemoveBackend("backend-00")
			b.AddBackend("backend-00")
		}
	}()
	wg.Wait()
	act := b.Active()
	var leaked int
	for _, n := range act {
		leaked += n
	}
	// The churned backend may have dropped in-flight leases at removal;
	// everything else must drain exactly.
	if leaked > 0 {
		for name, n := range act {
			if n != 0 && name != "backend-00" {
				t.Errorf("backend %s leaked %d sessions", name, n)
			}
		}
	}
}

// TestFallThroughLeaseShardMatchesHashShard pins the lease-shard/hash-shard
// agreement behind ReleaseBackend. Acquire's two-choice sampler can land on
// two empty shards and fall through to a linear probe over every shard; the
// probe still takes the backend from the shard its name hashes to, so the
// recorded lease shard and shardOf(name) must agree — otherwise
// ReleaseBackend (which resolves the shard by hash, not by lease) would
// decrement a different shard than Acquire charged and the backend's load
// would double-count forever. Draining the fleet to one backend makes the
// fall-through path the common case.
func TestFallThroughLeaseShardMatchesHashShard(t *testing.T) {
	names := shardedNames(12)
	b := NewShardedBalancer(8, names...)
	survivor := names[0]
	for _, name := range names[1:] {
		b.RemoveBackend(name)
	}
	// With 1 populated shard out of 8, most two-choice samples miss it
	// (P ≈ (7/8)·(6/7) per draw), so 400 acquires exercise the fall-through
	// probe hundreds of times.
	for i := 0; i < 400; i++ {
		lease, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if lease.Backend != survivor {
			t.Fatalf("acquire %d placed on %q, want %q", i, lease.Backend, survivor)
		}
		if want := b.shardOf(lease.Backend); lease.shard != want {
			t.Fatalf("acquire %d: lease shard %d != hash shard %d — ReleaseBackend would double-count",
				i, lease.shard, want)
		}
		// Release by name, the hash-resolving path under test.
		b.ReleaseBackend(lease.Backend)
	}
	if n := b.Active()[survivor]; n != 0 {
		t.Errorf("survivor load = %d after releasing every lease, want 0", n)
	}
	if got := b.Totals()[survivor]; got != 400 {
		t.Errorf("survivor placements = %d, want 400", got)
	}
}
