package gateway

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
)

func TestBalancerLeastLoaded(t *testing.T) {
	b := NewBalancer("a", "b", "c")
	got := make(map[string]int)
	for i := 0; i < 6; i++ {
		name, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		got[name]++
	}
	// Perfectly balanced: two sessions each.
	for _, name := range []string{"a", "b", "c"} {
		if got[name] != 2 {
			t.Errorf("backend %s got %d sessions", name, got[name])
		}
	}
	// Release two sessions from "b": next two placements go to b.
	b.Release("b")
	b.Release("b")
	for i := 0; i < 2; i++ {
		name, _ := b.Acquire()
		if name != "b" {
			t.Errorf("placement %d went to %s, want b", i, name)
		}
	}
	if tot := b.Totals(); tot["b"] != 4 {
		t.Errorf("totals = %v", tot)
	}
}

func TestBalancerSessionsStick(t *testing.T) {
	// The balancer hands out a name once; the session keeps it. Active
	// counts reflect held sessions.
	b := NewBalancer("a", "b")
	n1, _ := b.Acquire()
	n2, _ := b.Acquire()
	if n1 == n2 {
		t.Errorf("both sessions on %s", n1)
	}
	act := b.Active()
	if act["a"] != 1 || act["b"] != 1 {
		t.Errorf("active = %v", act)
	}
}

func TestBalancerEmpty(t *testing.T) {
	b := NewBalancer()
	if _, err := b.Acquire(); !errors.Is(err, ErrNoBackends) {
		t.Errorf("err = %v", err)
	}
	// Releasing unknown names must not panic or underflow.
	b.Release("ghost")
	b.AddBackend("x")
	b.AddBackend("x") // idempotent
	name, err := b.Acquire()
	if err != nil || name != "x" {
		t.Errorf("acquire = %s, %v", name, err)
	}
	b.RemoveBackend("x")
	if _, err := b.Acquire(); err == nil {
		t.Error("acquire after removal should fail")
	}
}

func TestBalancerConcurrent(t *testing.T) {
	b := NewBalancer("a", "b", "c", "d")
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			name, err := b.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			b.Release(name)
		}()
	}
	wg.Wait()
	for name, n := range b.Active() {
		if n != 0 {
			t.Errorf("backend %s leaked %d sessions", name, n)
		}
	}
}

// echoServer accepts connections and echoes bytes back, prefixed by its name.
func echoServer(t *testing.T, name string) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf, _ := io.ReadAll(c)
				fmt.Fprintf(c, "%s:%s", name, buf)
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestProxyEndToEnd(t *testing.T) {
	addrA, stopA := echoServer(t, "A")
	defer stopA()
	addrB, stopB := echoServer(t, "B")
	defer stopB()

	p := NewProxy(map[string]string{"a": addrA, "b": addrB})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()

	seen := make(map[string]bool)
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "ping%d", i)
		conn.(*net.TCPConn).CloseWrite()
		reply, err := io.ReadAll(conn)
		conn.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(reply) < 2 {
			t.Fatalf("short reply %q", reply)
		}
		seen[string(reply[0])] = true
		want := fmt.Sprintf("ping%d", i)
		if string(reply[2:]) != want {
			t.Errorf("reply = %q, want suffix %q", reply, want)
		}
	}
	// Sequential sessions close before the next opens, so the least-loaded
	// rule with deterministic tie-break pins them to "a"; both backends are
	// reachable in principle. Just assert traffic flowed.
	if len(seen) == 0 {
		t.Error("no backend reached")
	}
}

func TestBalancerHeapDeterministicTies(t *testing.T) {
	// The heap must reproduce the old sort-based rule exactly: least loaded
	// wins, ties go to the lexicographically smallest name.
	b := NewBalancer("delta", "alpha", "charlie", "bravo")
	want := []string{"alpha", "bravo", "charlie", "delta", "alpha", "bravo"}
	for i, w := range want {
		name, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if name != w {
			t.Errorf("placement %d = %s, want %s", i, name, w)
		}
	}
	// Releasing from the middle of the heap must restore its priority.
	b.Release("charlie")
	b.Release("charlie")
	if name, _ := b.Acquire(); name != "charlie" {
		t.Errorf("after releases, placement = %s, want charlie", name)
	}
}

func TestBalancerRemoveReAdd(t *testing.T) {
	b := NewBalancer("a", "b", "c")
	for i := 0; i < 3; i++ {
		b.Acquire()
	}
	b.RemoveBackend("a")
	for i := 0; i < 2; i++ {
		name, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if name == "a" {
			t.Error("placed on a removed backend")
		}
	}
	b.AddBackend("a") // comes back empty: next placements pour into it
	for i := 0; i < 2; i++ {
		if name, _ := b.Acquire(); name != "a" {
			t.Errorf("placement %d = %s, want a (fresh backend is least loaded)", i, name)
		}
	}
	act := b.Active()
	if act["a"] != 2 || act["b"]+act["c"] != 4 {
		t.Errorf("active = %v", act)
	}
}

func TestBalancerConcurrentChurn(t *testing.T) {
	// Acquire/Release racing RemoveBackend/AddBackend under -race. The
	// invariants: no placement lands on a backend observed as removed-for-
	// good, active counts return to zero, and a quiesced balancer places on
	// the true minimum.
	b := NewBalancer("a", "b", "c", "d")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				name, err := b.Acquire()
				if err != nil {
					continue // all backends momentarily removed
				}
				b.Release(name)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			b.RemoveBackend("d")
			b.AddBackend("d")
		}
	}()
	wg.Wait()
	for name, n := range b.Active() {
		if n != 0 {
			t.Errorf("backend %s leaked %d sessions", name, n)
		}
	}
	// Quiesced least-loaded check: skew the load, then watch placements
	// rebalance toward the minimum.
	b.Acquire() // a
	b.Acquire() // b
	name, err := b.Acquire()
	if err != nil || (name != "c" && name != "d") {
		t.Errorf("placement = %s (%v), want one of the empty backends", name, err)
	}
}

func TestBalancerLeastLoadedInvariantUnderLoad(t *testing.T) {
	// With only Acquire/Release traffic, sequential placements from a
	// balanced start must keep the spread ≤ 1 — the least-loaded rule.
	b := NewBalancer("a", "b", "c", "d", "e")
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if name, err := b.Acquire(); err == nil {
					b.Release(name)
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 10; i++ {
		if _, err := b.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	act := b.Active()
	min, max := 1<<30, 0
	for _, n := range act {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("sequential placements spread %v: max-min > 1", act)
	}
}

// TestBalancerMatchesReferenceModel drives random Acquire/Release/
// RemoveBackend/AddBackend sequences against a naive map-based model and
// demands identical placement at every step. Regression for the mid-heap
// removal bug: deleting a non-root, non-leaf backend used to skip the
// re-sift of the swapped-in slot, leaving the heap untrue to (load, name)
// order.
func TestBalancerMatchesReferenceModel(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	b := NewBalancer(names...)
	ref := make(map[string]int)
	for _, n := range names {
		ref[n] = 0
	}
	refAcquire := func() (string, bool) {
		best, ok := "", false
		for n, load := range ref {
			if !ok || load < ref[best] || (load == ref[best] && n < best) {
				best, ok = n, true
			}
		}
		if ok {
			ref[best]++
		}
		return best, ok
	}
	r := rand.New(rand.NewSource(42))
	for step := 0; step < 5000; step++ {
		switch op := r.Intn(10); {
		case op < 5: // acquire
			want, wantOK := refAcquire()
			got, err := b.Acquire()
			if (err == nil) != wantOK || got != want {
				t.Fatalf("step %d: Acquire = %q (%v), reference %q (%v); ref=%v",
					step, got, err, want, wantOK, ref)
			}
		case op < 8: // release a random name (may be absent or at zero)
			n := names[r.Intn(len(names))]
			if load, ok := ref[n]; ok && load > 0 {
				ref[n]--
			}
			b.Release(n)
		case op < 9: // remove a random backend (root, middle, or leaf)
			n := names[r.Intn(len(names))]
			delete(ref, n)
			b.RemoveBackend(n)
		default: // add it back with zero load
			n := names[r.Intn(len(names))]
			if _, ok := ref[n]; !ok {
				ref[n] = 0
			}
			b.AddBackend(n)
		}
		if act := b.Active(); len(act) != len(ref) {
			t.Fatalf("step %d: active set %v, reference %v", step, act, ref)
		}
	}
}
