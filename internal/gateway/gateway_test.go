package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
)

func TestBalancerLeastLoaded(t *testing.T) {
	b := NewBalancer("a", "b", "c")
	got := make(map[string]int)
	for i := 0; i < 6; i++ {
		name, err := b.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		got[name]++
	}
	// Perfectly balanced: two sessions each.
	for _, name := range []string{"a", "b", "c"} {
		if got[name] != 2 {
			t.Errorf("backend %s got %d sessions", name, got[name])
		}
	}
	// Release two sessions from "b": next two placements go to b.
	b.Release("b")
	b.Release("b")
	for i := 0; i < 2; i++ {
		name, _ := b.Acquire()
		if name != "b" {
			t.Errorf("placement %d went to %s, want b", i, name)
		}
	}
	if tot := b.Totals(); tot["b"] != 4 {
		t.Errorf("totals = %v", tot)
	}
}

func TestBalancerSessionsStick(t *testing.T) {
	// The balancer hands out a name once; the session keeps it. Active
	// counts reflect held sessions.
	b := NewBalancer("a", "b")
	n1, _ := b.Acquire()
	n2, _ := b.Acquire()
	if n1 == n2 {
		t.Errorf("both sessions on %s", n1)
	}
	act := b.Active()
	if act["a"] != 1 || act["b"] != 1 {
		t.Errorf("active = %v", act)
	}
}

func TestBalancerEmpty(t *testing.T) {
	b := NewBalancer()
	if _, err := b.Acquire(); !errors.Is(err, ErrNoBackends) {
		t.Errorf("err = %v", err)
	}
	// Releasing unknown names must not panic or underflow.
	b.Release("ghost")
	b.AddBackend("x")
	b.AddBackend("x") // idempotent
	name, err := b.Acquire()
	if err != nil || name != "x" {
		t.Errorf("acquire = %s, %v", name, err)
	}
	b.RemoveBackend("x")
	if _, err := b.Acquire(); err == nil {
		t.Error("acquire after removal should fail")
	}
}

func TestBalancerConcurrent(t *testing.T) {
	b := NewBalancer("a", "b", "c", "d")
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			name, err := b.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			b.Release(name)
		}()
	}
	wg.Wait()
	for name, n := range b.Active() {
		if n != 0 {
			t.Errorf("backend %s leaked %d sessions", name, n)
		}
	}
}

// echoServer accepts connections and echoes bytes back, prefixed by its name.
func echoServer(t *testing.T, name string) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf, _ := io.ReadAll(c)
				fmt.Fprintf(c, "%s:%s", name, buf)
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestProxyEndToEnd(t *testing.T) {
	addrA, stopA := echoServer(t, "A")
	defer stopA()
	addrB, stopB := echoServer(t, "B")
	defer stopB()

	p := NewProxy(map[string]string{"a": addrA, "b": addrB})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()

	seen := make(map[string]bool)
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "ping%d", i)
		conn.(*net.TCPConn).CloseWrite()
		reply, err := io.ReadAll(conn)
		conn.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(reply) < 2 {
			t.Fatalf("short reply %q", reply)
		}
		seen[string(reply[0])] = true
		want := fmt.Sprintf("ping%d", i)
		if string(reply[2:]) != want {
			t.Errorf("reply = %q, want suffix %q", reply, want)
		}
	}
	// Sequential sessions close before the next opens, so the least-loaded
	// rule with deterministic tie-break pins them to "a"; both backends are
	// reachable in principle. Just assert traffic flowed.
	if len(seen) == 0 {
		t.Error("no backend reached")
	}
}
