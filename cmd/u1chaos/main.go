// Command u1chaos is the config-driven chaos runner: it executes a matrix of
// named catalog scenarios (internal/scenario) — SSO login storms, regional
// outages, slow disks, thundering herds, flash crowds — each a pure function
// of its config, and writes the per-scenario results as the scenarios
// section of a u1-bench/1 report. Every scenario carries its own invariant;
// any violation is printed and exits non-zero, which is what the CI chaos
// job gates on.
//
// Usage:
//
//	u1chaos -config chaos.json [-out chaos-report.json] [-smoke] [-v]
//	u1chaos -scenarios sso-storm,flash-crowd [-users N] [-days N] [-seed N] [-workers N]
//	u1chaos -list
//
// The config is a JSON matrix: optional global scale defaults plus the
// scenario list, where each element is a bare catalog name or an object with
// per-entry overrides:
//
//	{"users": 150, "scenarios": ["sso-storm", {"name": "flash-crowd", "users": 300}]}
//
// -smoke clamps every resolved entry to CI scale (it never edits the
// config); with a fixed config, seed and workers the emitted report is
// reproducible byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"u1/internal/metrics"
	"u1/internal/scenario"
)

// Smoke-mode clamps: big enough that every catalog invariant still engages
// (storms shed, herds retry, disks journal), small enough for a CI lane.
const (
	smokeMaxUsers = 160
	smokeMaxDays  = 2
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("u1chaos: ")

	config := flag.String("config", "", "scenario matrix config (JSON)")
	out := flag.String("out", "chaos-report.json", "per-scenario report path (empty to skip)")
	smoke := flag.Bool("smoke", false, fmt.Sprintf("clamp every scenario to CI scale (max %d users, %d days)", smokeMaxUsers, smokeMaxDays))
	list := flag.Bool("list", false, "list the scenario catalog and exit")
	scenarios := flag.String("scenarios", "", "comma-separated catalog names to run instead of a config file")
	users := flag.Int("users", 0, "override user population for every scenario (0 = catalog default)")
	days := flag.Int("days", 0, "override trace window in days (0 = catalog default)")
	seed := flag.Int64("seed", 0, "override random seed (0 = catalog default)")
	workers := flag.Int("workers", 0, "override generator shards (0 = catalog default, 1 = serial)")
	verbose := flag.Bool("v", false, "narrate scenario progress")
	flag.Parse()

	if *list {
		for _, s := range scenario.Catalog() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}

	m, err := matrixFrom(*config, *scenarios)
	if err != nil {
		log.Fatal(err)
	}
	if *users != 0 {
		m.Users = *users
	}
	if *days != 0 {
		m.Days = *days
	}
	if *seed != 0 {
		m.Seed = *seed
	}
	if *workers != 0 {
		m.Workers = *workers
	}
	if *smoke {
		m.MaxUsers, m.MaxDays = smokeMaxUsers, smokeMaxDays
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}
	stats, violations, err := scenario.RunMatrix(m, logf)
	if err != nil {
		log.Fatal(err)
	}

	for _, e := range m.Scenarios {
		st := stats[e.Name]
		verdict := "pass"
		if st.Invariant != "pass" {
			verdict = "FAIL"
		}
		fmt.Printf("%-16s %s  ops=%d errors=%d injected=%d shed=%d sso_shed=%d retried=%d\n",
			e.Name, verdict, st.TotalOps, st.TotalErrors, st.Injected, st.Shed, st.SSOShed, st.Retried)
	}

	if *out != "" {
		rep := metrics.BenchReport{
			Schema:     metrics.BenchSchema,
			Ops:        map[string]metrics.OpStats{},
			RPCClasses: map[string]metrics.OpStats{},
			Scenarios:  stats,
		}
		if err := metrics.WriteBenchReport(*out, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d scenario reports to %s\n", len(stats), *out)
	}

	if len(violations) > 0 {
		for _, v := range violations {
			log.Printf("INVARIANT VIOLATED: %s", v)
		}
		os.Exit(1)
	}
}

// matrixFrom resolves the run's matrix: a config file, or a -scenarios list,
// or (neither given) the full catalog in registration order.
func matrixFrom(config, scenarios string) (scenario.Matrix, error) {
	if config != "" && scenarios != "" {
		return scenario.Matrix{}, fmt.Errorf("-config and -scenarios are mutually exclusive")
	}
	if config != "" {
		data, err := os.ReadFile(config)
		if err != nil {
			return scenario.Matrix{}, err
		}
		return scenario.ParseMatrix(data)
	}
	var m scenario.Matrix
	if scenarios != "" {
		for _, name := range strings.Split(scenarios, ",") {
			name = strings.TrimSpace(name)
			if _, err := scenario.Lookup(name); err != nil {
				return m, err
			}
			m.Scenarios = append(m.Scenarios, scenario.Entry{Name: name})
		}
		return m, nil
	}
	for _, s := range scenario.Catalog() {
		m.Scenarios = append(m.Scenarios, scenario.Entry{Name: s.Name})
	}
	return m, nil
}
