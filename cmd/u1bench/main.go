// Command u1bench runs the full experiment suite: it generates the default
// 30-day trace, runs every analysis, and prints a paper-vs-measured report —
// the data recorded in EXPERIMENTS.md. It also snapshots the cluster's live
// metrics registry and writes the machine-readable benchmark record
// (BENCH_*.json) that CI archives as the repo's perf trajectory.
//
// Usage:
//
//	u1bench [-users 2000] [-days 30] [-seed 1] [-workers 0]
//	        [-fault-rate 0] [-admit-watermark 0] [-bench-out BENCH_9.json]
//	        [-durability DIR] [-fsync per-op|group|async] [-snapshot-every 0]
//	        [-regions 0] [-repl-delay 0] [-eventual]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"u1/internal/analysis"
	"u1/internal/client"
	"u1/internal/faults"
	"u1/internal/hotpath"
	"u1/internal/metrics"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/wal"
	"u1/internal/workload"
)

func main() {
	users := flag.Int("users", 2000, "population size (paper: 1.29M)")
	days := flag.Int("days", 30, "trace window in days (paper: 30)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "parallel generator shards (0 = GOMAXPROCS, 1 = serial stream)")
	faultRate := flag.Float64("fault-rate", 0, "deterministic per-op injected failure fraction (0 disables)")
	admitWatermark := flag.Int("admit-watermark", 0, "per-proc admitted-requests-per-minute watermark for load shedding (0 disables)")
	benchOut := flag.String("bench-out", "BENCH_9.json", "benchmark report path (empty to skip)")
	durability := flag.String("durability", "", "directory for the metadata store's per-shard WAL + snapshots (empty = in-memory)")
	fsync := flag.String("fsync", "per-op", "journal fsync policy: per-op, group, or async")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal records between per-shard snapshots (0 = metadata default)")
	regions := flag.Int("regions", 0, "metadata regions with asynchronous cross-region replication (<= 1 disables)")
	replDelay := flag.Int("repl-delay", 0, "cross-region replication delay in epochs")
	eventual := flag.Bool("eventual", false, "serve cross-region reads from the local replica instead of the owner shard")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close() //nolint:errcheck
		}()
	}

	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	cluster, err := server.OpenCluster(server.Config{
		Seed: *seed, AuthFailureRate: 0.0276,
		FaultPlan:      faults.Uniform(*seed, *faultRate),
		AdmitWatermark: *admitWatermark,
		Durability:     *durability,
		FsyncPolicy:    policy,
		SnapshotEvery:  *snapshotEvery,

		Regions:          *regions,
		ReplicationDelay: *replDelay,
		EventualReads:    *eventual,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	col := trace.NewCollector(trace.Config{
		Start: workload.PaperStart, Days: *days,
		Shards: cluster.Store.NumShards(), Seed: *seed,
	})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())
	// Stamp generation time around Run only, matching bench_test.go so the
	// two producers of the u1-bench/1 schema report commensurable ops/sec.
	wcfg := workload.Config{Users: *users, Days: *days, Seed: *seed, Workers: *workers}
	if *faultRate > 0 || *admitWatermark > 0 {
		// Failures are only interesting if clients react to them: give the
		// population the bounded virtual-time retry policy.
		wcfg.Retry = client.Retry{Max: 2, Backoff: 2 * time.Second}
	}
	genStart := time.Now()
	workload.New(wcfg, cluster).Run()
	genWall := time.Since(genStart)
	t := analysis.FromCollector(col, workload.PaperStart, *days)
	clean := t.Sanitize()
	fmt.Printf("== U1 reproduction: %d users, %d days, %d records (generated in %v) ==\n\n",
		*users, *days, len(t.Records), time.Since(start).Round(time.Millisecond))

	row := func(id, metric, paper, measured string) {
		fmt.Printf("%-5s %-46s %-22s %s\n", id, metric, paper, measured)
	}
	fmt.Printf("%-5s %-46s %-22s %s\n", "exp", "metric", "paper", "measured")
	fmt.Println(strings78)

	sum := analysis.AnalyzeSummary(clean)
	row("T3", "unique users", "1,294,794", fmt.Sprint(sum.UniqueUsers))
	row("T3", "sessions", "42.5M", fmt.Sprint(sum.Sessions))
	row("T3", "transfer operations", "194.3M", fmt.Sprint(sum.Transfers))
	row("T3", "upload traffic", "105 TB", fmt.Sprintf("%.1f GB", float64(sum.UploadBytes)/1e9))
	row("T3", "download traffic", "120 TB", fmt.Sprintf("%.1f GB", float64(sum.DownloadBytes)/1e9))
	row("§5.1", "updates: % of upload ops", "10.05%", fmt.Sprintf("%.2f%%", 100*sum.UpdateOpFraction()))
	row("§5.1", "updates: % of upload bytes", "18.47%", fmt.Sprintf("%.2f%%", 100*sum.UpdateByteFraction()))

	tf := analysis.AnalyzeTraffic(t)
	upOps, upData := tf.UpBuckets.CountFractions(), tf.UpBuckets.WeightFractions()
	dnOps, dnData := tf.DownBuckets.CountFractions(), tf.DownBuckets.WeightFractions()
	row("F2a", "upload day/night amplitude", "~10x", fmt.Sprintf("%.1fx", tf.DayNightRatio))
	row("F2b", ">25MB files: % of upload bytes", "79.3%", fmt.Sprintf("%.1f%%", 100*upData[4]))
	row("F2b", ">25MB files: % of download bytes", "88.2%", fmt.Sprintf("%.1f%%", 100*dnData[4]))
	row("F2b", "<0.5MB files: % of upload ops", "84.3%", fmt.Sprintf("%.1f%%", 100*upOps[0]))
	row("F2b", "<0.5MB files: % of download ops", "89.0%", fmt.Sprintf("%.1f%%", 100*dnOps[0]))

	rw := analysis.AnalyzeRWRatio(t)
	row("F2c", "R/W ratio median", "1.14", fmt.Sprintf("%.2f", rw.Box.Median))
	row("F2c", "R/W ACF lags outside 95% band", "most", fmt.Sprintf("%d/%d", rw.Exceedances, len(rw.ACF)))
	row("F2c", "R/W 6am-3pm trend", "linear decay", fmt.Sprintf("slope %.3f/h", rw.MorningTrend))

	dep := analysis.AnalyzeDependencies(clean)
	row("F3a", "WAW/RAW/DAW shares", "44/30/26%", fmt.Sprintf("%.0f/%.0f/%.0f%%", 100*dep.WAWFrac, 100*dep.RAWFrac, 100*dep.DAWFrac))
	row("F3a", "WAW gaps under 1 hour", "80%", fmt.Sprintf("%.0f%%", 100*dep.WAWUnderHour))
	row("F3b", "RAR/DAR/WAR shares", "66/24/10%", fmt.Sprintf("%.0f/%.0f/%.0f%%", 100*dep.RARFrac, 100*dep.DARFrac, 100*dep.WARFrac))
	row("F3b", "dying files (idle >1d before delete)", "9.1%", fmt.Sprintf("%.1f%%", 100*dep.DyingFileShare))

	lt := analysis.AnalyzeLifetime(clean)
	row("F3c", "files deleted within the month", "28.9%", fmt.Sprintf("%.1f%%", 100*lt.FileDeadFrac))
	row("F3c", "dirs deleted within the month", "31.5%", fmt.Sprintf("%.1f%%", 100*lt.DirDeadFrac))
	row("F3c", "files deleted within 8 hours", "17.1%", fmt.Sprintf("%.1f%%", 100*lt.FileDead8hFrac))

	dd := analysis.AnalyzeDedup(clean)
	row("F4a", "deduplication ratio", "0.171", fmt.Sprintf("%.3f", dd.Ratio))
	row("F4a", "contents with a single reference", "~80%", fmt.Sprintf("%.0f%%", 100*dd.SingletonShare))

	sz := analysis.AnalyzeSizes(clean)
	row("F4b", "files smaller than 1 MB", "90%", fmt.Sprintf("%.0f%%", 100*sz.Sub1MBShare))

	ty := analysis.AnalyzeTypes(clean)
	codeF, avB := 0.0, 0.0
	for i, cat := range ty.Categories {
		if cat == "Code" {
			codeF = ty.FileShare[i]
		}
		if cat == "Audio/Video" {
			avB = ty.ByteShare[i]
		}
	}
	row("F4c", "Code: share of files (most numerous)", "~27%", fmt.Sprintf("%.0f%%", 100*codeF))
	row("F4c", "A/V: share of bytes (largest)", "~25%", fmt.Sprintf("%.0f%%", 100*avB))

	at := analysis.AnalyzeDDoS(t)
	row("F5", "attacks detected", "3", fmt.Sprint(len(at.Attacks)))
	for _, a := range at.Attacks {
		row("F5", fmt.Sprintf("  day %d attack: auth / API multiplier", a.Day),
			"5-15x / 4.6-245x", fmt.Sprintf("%.0fx / %.0fx", a.Multiplier, a.APIMultiplier))
	}

	oa := analysis.AnalyzeOnlineActive(clean)
	row("F6", "active share of online users", "3.5-16.3%", fmt.Sprintf("%.1f-%.1f%%", 100*oa.MinActiveShare, 100*oa.MaxActiveShare))

	ut := analysis.AnalyzeUserTraffic(clean)
	row("F7b", "users who downloaded anything", "14%", fmt.Sprintf("%.1f%%", 100*ut.DownloadedShare))
	row("F7b", "users who uploaded anything", "25%", fmt.Sprintf("%.1f%%", 100*ut.UploadedShare))
	row("F7c", "Gini coefficient (upload)", "0.8943", fmt.Sprintf("%.3f", ut.GiniUp))
	row("F7c", "Gini coefficient (download)", "0.8966", fmt.Sprintf("%.3f", ut.GiniDown))
	row("F7c", "traffic from top 1% of users", "65.6%", fmt.Sprintf("%.1f%%", 100*ut.Top1Share))
	row("§6.1", "occasional users", "85.82%", fmt.Sprintf("%.1f%%", 100*ut.ClassShares["occasional"]))
	row("§6.1", "upload-only users", "7.22%", fmt.Sprintf("%.1f%%", 100*ut.ClassShares["upload-only"]))
	row("§6.1", "download-only users", "2.34%", fmt.Sprintf("%.1f%%", 100*ut.ClassShares["download-only"]))
	row("§6.1", "heavy users", "4.62%", fmt.Sprintf("%.1f%%", 100*ut.ClassShares["heavy"]))

	tr := analysis.AnalyzeTransitions(clean)
	row("F8", "P(transfer follows transfer)", "high", fmt.Sprintf("%.2f", tr.TransferSelfLoop))

	bu := analysis.AnalyzeBurstiness(clean)
	row("F9", "upload inter-op power law alpha", "1.54", fmt.Sprintf("%.2f", bu.UploadFit.Alpha))
	row("F9", "unlink inter-op power law alpha", "1.44", fmt.Sprintf("%.2f", bu.UnlinkFit.Alpha))
	row("F9", "upload inter-op CoV (Poisson=1)", ">>1", fmt.Sprintf("%.1f", bu.CoVUpload))

	vo := analysis.AnalyzeVolumes(clean)
	row("F10", "Pearson(files, dirs) per volume", "0.998", fmt.Sprintf("%.3f", vo.Pearson))
	row("F11", "users with UDFs", "58%", fmt.Sprintf("%.0f%%", 100*vo.UDFShare))
	row("F11", "users with shares", "1.8%", fmt.Sprintf("%.1f%%", 100*vo.SharedShare))

	rp := analysis.AnalyzeRPCPerf(t)
	row("F12", "RPC tail mass (far from median)", "7-22%", fmt.Sprintf("%.0f-%.0f%%", 100*rp.MinTail, 100*rp.MaxTail))
	row("F13", "cascade/read median service time", ">10x", fmt.Sprintf("%.0fx", rp.CascadeToReadRatio))

	lb := analysis.AnalyzeLoadBalance(t)
	row("F14", "shard CoV: per-minute vs whole-trace", "high vs 4.9%", fmt.Sprintf("%.2f vs %.1f%%", lb.ShardMinuteCV, 100*lb.ShardLongTermCV))

	se := analysis.AnalyzeSessions(clean)
	row("F15", "auth failures", "2.76%", fmt.Sprintf("%.2f%%", 100*se.AuthFailShare))
	row("F15", "Monday auth vs weekend", "+15%", fmt.Sprintf("%+.0f%%", 100*se.MondayBoost))
	row("F16", "sessions under 1 second", "32%", fmt.Sprintf("%.0f%%", 100*se.Sub1s))
	row("F16", "sessions under 8 hours", "97%", fmt.Sprintf("%.0f%%", 100*se.Sub8h))
	row("F16", "active sessions", "5.57%", fmt.Sprintf("%.2f%%", 100*se.ActiveShare))
	row("F16", "p80 ops per active session", "92", fmt.Sprintf("%.0f", se.P80Ops))
	row("F16", "ops carried by top 20% active sessions", "96.7%", fmt.Sprintf("%.1f%%", 100*se.Top20OpsShare))

	er := analysis.AnalyzeErrors(t)
	for _, c := range er.Classes {
		row("§5.4", fmt.Sprintf("%s-class error rate", c.Class), "clusters by op class",
			fmt.Sprintf("%.2f%% (%d/%d)", 100*c.Rate(), c.Errors, c.Ops))
	}

	wi := analysis.AnalyzeWhatIf(clean)
	row("§9", "delta updates would avoid", "~15% of upload bytes",
		fmt.Sprintf("%.1f%% (%.1f GB)", 100*float64(wi.DeltaUpdateSavings)/float64(wi.UploadBytes), float64(wi.DeltaUpdateSavings)/1e9))
	row("§9", "dedup saves of the S3 bill", "17% (~$3.4k/mo)", fmt.Sprintf("%.1f%% (~$%.0f/mo)", 100*wi.DedupMonthlyUSD/20000, wi.DedupMonthlyUSD))
	row("§7.3", "cold sessions (no data management)", "94.4%", fmt.Sprintf("%.1f%%", 100*float64(wi.ColdSessions)/float64(wi.TotalSessions)))
	row("§9", "downloads served by a 24h cache", "RAR-heavy", fmt.Sprintf("%.1f%%", 100*wi.CacheHitRate))

	fmt.Println(strings78)

	// Observability section: the same numbers, but read live from the
	// metrics registry instead of the offline trace — and archived as the
	// machine-readable perf record.
	rep := metrics.BuildBenchReport(cluster.Metrics.Snapshot(), genWall.Seconds(), *users, *days)
	fmt.Printf("\n== live metrics (%d ops, %.0f ops/s of generation) ==\n", rep.TotalOps, rep.OpsPerSec)
	fmt.Printf("%-14s %10s %8s %10s %10s %10s\n", "op", "count", "errors", "p50_ms", "p95_ms", "p99_ms")
	for _, name := range rep.SortedOpNames() {
		st := rep.Ops[name]
		fmt.Printf("%-14s %10d %8d %10.2f %10.2f %10.2f\n",
			name, st.Count, st.Errors, st.P50Ms, st.P95Ms, st.P99Ms)
	}
	fmt.Printf("shard balance: reads %v writes %v (CV %.3f)\n", rep.Shards.Reads, rep.Shards.Writes, rep.Shards.CV)
	if rep.Faults != nil {
		fmt.Printf("faults: injected %d, shed %d, retried %d (succeeded %d)\n",
			rep.Faults.Injected, rep.Faults.Shed, rep.Faults.Retried, rep.Faults.RetrySucceeded)
	}
	if rep.Replication != nil {
		fmt.Printf("replication: published %d, applied %d, LWW-skipped %d, backlog %d, lag mean/max %.1f/%.0f epochs, reads local/remote/stale %d/%d/%d\n",
			rep.Replication.Published, rep.Replication.Applied, rep.Replication.LWWSkipped,
			rep.Replication.BacklogDepth, rep.Replication.LagMeanEp, rep.Replication.LagMaxEp,
			rep.Replication.ReadsLocal, rep.Replication.ReadsRemote, rep.Replication.ReadsStale)
	}

	// Contended hot-path calibration: serial vs parallel ops/sec on the
	// per-request structures. Speedup > 1 at multiple cores is the
	// de-serialization win this report exists to track.
	rep.HotPaths = hotpath.Measure(0)
	fmt.Printf("\n== hot paths (parallel workers: %d) ==\n", rep.HotPaths[hotpath.RPCCall].Workers)
	fmt.Printf("%-34s %14s %14s %8s\n", "path", "serial_ops/s", "parallel_ops/s", "speedup")
	for _, path := range []string{hotpath.RPCCall, hotpath.NotifyPublish, hotpath.GatewayPlace, hotpath.GatewayPlaceSharded} {
		st := rep.HotPaths[path]
		fmt.Printf("%-34s %14.0f %14.0f %7.2fx\n", path, st.SerialOpsPerSec, st.ParallelOpsPerSec, st.Speedup)
	}

	// Generator scaling: end-to-end trace generation with one shard vs one
	// shard per core — the throughput unlock of the sharded simulation
	// substrate, recorded in the report's generator section.
	gen := hotpath.MeasureGenerator(0, 0)
	rep.Generator = &gen
	fmt.Printf("\n== generator (sharded simulation, %d workers, %d users x %d days) ==\n",
		gen.Workers, gen.Users, gen.Days)
	fmt.Printf("serial %0.f events/s, parallel %0.f events/s, speedup %.2fx\n",
		gen.SerialEventsPerSec, gen.ParallelEventsPerSec, gen.Speedup)

	// Durability pricing: journal append throughput and modeled sync cost
	// under each fsync policy, against a throwaway WAL — recorded whether or
	// not this run itself journaled, so every report prices the same menu.
	durDir, err := os.MkdirTemp("", "u1bench-wal-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ds, err := hotpath.MeasureDurability(durDir, 0)
	os.RemoveAll(durDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Durability = &ds
	fmt.Printf("\n== durability (WAL fsync policies) ==\n")
	fmt.Printf("%-10s %14s %16s %12s\n", "policy", "appends/s", "syncs/append", "sync_cost_ms")
	for _, p := range wal.Policies() {
		st := ds.Policies[p.String()]
		fmt.Printf("%-10s %14.0f %16.3f %12.3f\n", p, st.AppendsPerSec, st.SyncsPerAppend, st.SyncCostMs)
	}
	if *durability != "" {
		if err := cluster.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c := cluster.Metrics.Snapshot().Counters
		fmt.Printf("journaled run (%s): %d journaled ops, %d WAL appends, %d snapshots\n",
			policy, c[metrics.WALPrefix+"journaled"], c[metrics.WALPrefix+"appends"],
			c[metrics.WALPrefix+"snapshots"])
	}

	if *benchOut != "" {
		if err := metrics.WriteBenchReport(*benchOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("benchmark report written to %s\n", *benchOut)
	}
	fmt.Printf("total runtime %v\n", time.Since(start).Round(time.Millisecond))
}

const strings78 = "------------------------------------------------------------------------------"
