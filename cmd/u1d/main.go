// Command u1d runs the U1 back-end over real TCP: six API server machines
// behind a least-loaded gateway, the sharded metadata store, the S3-like
// data store, the auth service and the notification broker — the full Fig. 1
// deployment in one process. Clients (cmd/u1cli) connect to the gateway.
//
// Usage:
//
//	u1d -gateway 127.0.0.1:7001 -issue 3
//
// -issue pre-registers N demo users and prints their tokens for u1cli.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"u1/internal/protocol"
	"u1/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("u1d: ")

	gateway := flag.String("gateway", "127.0.0.1:7001", "gateway listen address")
	machines := flag.Int("machines", 6, "number of API server machines")
	procs := flag.Int("procs", 12, "API processes per machine")
	issue := flag.Int("issue", 3, "pre-issue tokens for this many demo users")
	realSleep := flag.Bool("realistic-latency", false, "RPCs take their sampled service time in wall time")
	flag.Parse()

	names := server.DefaultMachines
	if *machines < len(names) {
		names = names[:*machines]
	}
	cluster := server.NewCluster(server.Config{
		Machines:        names,
		ProcsPerMachine: *procs,
		InlineData:      true,
		RealSleep:       *realSleep,
		AuthFailureRate: 0, // interactive use; no injected failures
	})
	tc, err := cluster.ListenAndServe(*gateway)
	if err != nil {
		log.Fatal(err)
	}
	defer tc.Close()

	fmt.Printf("gateway listening on %s (%d machines × %d procs)\n", tc.GateAddr, len(names), *procs)
	for i := 1; i <= *issue; i++ {
		token, err := cluster.Auth.Issue(protocol.UserID(i))
		if err != nil {
			log.Fatalf("issuing token: %v", err)
		}
		fmt.Printf("user %d token: %s\n", i, token)
	}
	fmt.Println("ready; ctrl-c to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nshutting down")
}
