// Command u1sim generates a synthetic U1 back-end trace: it boots the full
// cluster in-process, replays a calibrated user population against it on a
// virtual clock, and writes the resulting logfiles in the paper's
// production-<machine>-<proc>-<date> convention.
//
// Usage:
//
//	u1sim -users 2000 -days 30 -out ./trace [-seed 1] [-no-attacks] [-rpc]
//	      [-fault-rate 0] [-admit-watermark 0]
//	      [-durability DIR] [-fsync per-op|group|async] [-snapshot-every 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"u1/internal/client"
	"u1/internal/faults"
	"u1/internal/metrics"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/wal"
	"u1/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("u1sim: ")

	users := flag.Int("users", 2000, "user population size")
	days := flag.Int("days", 30, "trace window in days")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "trace", "output directory for logfiles")
	noAttacks := flag.Bool("no-attacks", false, "disable the three DDoS events")
	workers := flag.Int("workers", 0, "parallel generator shards (0 = GOMAXPROCS, 1 = serial stream)")
	keepRPC := flag.Bool("rpc", false, "also write rpc span records (large)")
	stream := flag.Bool("stream", false, "flush logfiles at every epoch barrier instead of accumulating records in memory (same bytes, bounded footprint)")
	faultRate := flag.Float64("fault-rate", 0, "deterministic per-op injected failure fraction (0 disables)")
	admitWatermark := flag.Int("admit-watermark", 0, "per-proc admitted-requests-per-minute watermark for load shedding (0 disables)")
	durability := flag.String("durability", "", "directory for the metadata store's per-shard WAL + snapshots (empty = in-memory)")
	fsync := flag.String("fsync", "per-op", "journal fsync policy: per-op, group, or async")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal records between per-shard snapshots (0 = metadata default)")
	regions := flag.Int("regions", 0, "metadata regions with asynchronous cross-region replication (<= 1 disables)")
	replDelay := flag.Int("repl-delay", 0, "cross-region replication delay in epochs")
	eventual := flag.Bool("eventual", false, "serve cross-region reads from the local replica instead of the owner shard")
	flag.Parse()

	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	cluster, err := server.OpenCluster(server.Config{
		Seed: *seed, AuthFailureRate: 0.0276,
		FaultPlan:      faults.Uniform(*seed, *faultRate),
		AdmitWatermark: *admitWatermark,
		Durability:     *durability,
		FsyncPolicy:    policy,
		SnapshotEvery:  *snapshotEvery,

		Regions:          *regions,
		ReplicationDelay: *replDelay,
		EventualReads:    *eventual,
	})
	if err != nil {
		log.Fatalf("opening cluster: %v", err)
	}
	col := trace.NewCollector(trace.Config{
		Start:          workload.PaperStart,
		Days:           *days,
		Shards:         cluster.Store.NumShards(),
		Seed:           *seed,
		KeepRPCRecords: *keepRPC,
	})
	cluster.AddAPIObserver(col.APIObserver())
	cluster.AddRPCObserver(col.RPCObserver())

	cfg := workload.Config{Users: *users, Days: *days, Seed: *seed, Workers: *workers}
	if *noAttacks {
		cfg.Attacks = []workload.Attack{}
	}
	if *faultRate > 0 || *admitWatermark > 0 {
		cfg.Retry = client.Retry{Max: 2, Backoff: 2 * time.Second}
	}
	g := workload.New(cfg, cluster)
	if *stream {
		if err := col.StartStream(*out); err != nil {
			log.Fatalf("opening stream: %v", err)
		}
		g.Engine().AtEpochEnd(func(time.Time) {
			if err := col.Flush(); err != nil {
				log.Fatalf("streaming trace: %v", err)
			}
		})
	}
	totals := g.Run()

	fmt.Printf("generated %d records in %v (%d events on %d shards)\n", col.Len(),
		time.Since(start).Round(time.Millisecond), g.Engine().Executed(), g.Engine().NumShards())
	fmt.Printf("totals: %d sessions, %d uploads, %d downloads, %d deletes, %d attack sessions\n",
		totals.Sessions, totals.Uploads, totals.Downloads, totals.Deletes, totals.AttackSessions)
	if *faultRate > 0 || *admitWatermark > 0 {
		c := cluster.Metrics.Snapshot().Counters
		fmt.Printf("faults: injected %d, shed %d, retried %d (succeeded %d)\n",
			c[metrics.FaultsPrefix+"injected"], c[metrics.FaultsPrefix+"shed"],
			c[metrics.FaultsPrefix+"retried"], c[metrics.FaultsPrefix+"retry_succeeded"])
	}
	if *regions > 1 {
		cluster.Store.DrainReplication()
		c := cluster.Metrics.Snapshot().Counters
		fmt.Printf("replication (%d regions, delay %d): %d published, %d applied, %d LWW-skipped, reads local/remote/stale %d/%d/%d\n",
			*regions, *replDelay,
			c[metrics.ReplicationPrefix+"published"], c[metrics.ReplicationPrefix+"applied"],
			c[metrics.ReplicationPrefix+"lww_skipped"], c[metrics.ReplicationPrefix+"reads.local"],
			c[metrics.ReplicationPrefix+"reads.remote"], c[metrics.ReplicationPrefix+"reads.stale"])
	}
	if *durability != "" {
		if err := cluster.Close(); err != nil {
			log.Fatalf("closing cluster: %v", err)
		}
		c := cluster.Metrics.Snapshot().Counters
		fmt.Printf("durability (%s): %d journaled ops, %d WAL appends, %d snapshots\n",
			policy, c[metrics.WALPrefix+"journaled"], c[metrics.WALPrefix+"appends"],
			c[metrics.WALPrefix+"snapshots"])
	}

	if *stream {
		if err := col.CloseStream(); err != nil {
			log.Fatalf("closing stream: %v", err)
		}
	} else if err := col.WriteCSV(*out); err != nil {
		log.Fatalf("writing trace: %v", err)
	}
	entries, err := os.ReadDir(*out)
	if err != nil {
		log.Fatalf("listing %s: %v", *out, err)
	}
	fmt.Printf("wrote %d logfiles to %s\n", len(entries), *out)
}
