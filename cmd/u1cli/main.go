// Command u1cli is an interactive U1 desktop client: it connects to a u1d
// gateway, authenticates with a token, and exposes the storage protocol as
// shell-like commands.
//
// Usage:
//
//	u1cli -addr 127.0.0.1:7001 -token <token from u1d>
//
// Commands: ls, mkdir NAME, put NAME CONTENT, get ID, rm ID, mv ID NAME,
// volumes, shares, sync, udf PATH, share VOL USER, quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"u1/internal/client"
	"u1/internal/protocol"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("u1cli: ")

	addr := flag.String("addr", "127.0.0.1:7001", "gateway address")
	token := flag.String("token", "", "OAuth token (from u1d -issue)")
	flag.Parse()
	if *token == "" {
		log.Fatal("a -token is required (start u1d and copy one)")
	}

	tr, err := client.DialTCP(*addr)
	if err != nil {
		log.Fatal(err)
	}
	cli := client.New(tr)
	cli.AutoFetch = false
	if err := cli.Connect(*token); err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer cli.Close()
	root, _ := cli.RootVolume()
	fmt.Printf("connected as %v (session %d), root volume %d\n", cli.User(), cli.Session(), root)

	// Surface pushes as they arrive.
	go func() {
		for p := range cli.Pushes() {
			fmt.Printf("\n[push] %v volume=%d gen=%d\n> ", p.Event, p.Volume, p.Generation)
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.Fields(sc.Text())
		if len(line) == 0 {
			fmt.Print("> ")
			continue
		}
		if err := run(cli, root, line); err != nil {
			fmt.Println("error:", err)
		}
		if line[0] == "quit" {
			return
		}
		fmt.Print("> ")
	}
}

func run(cli *client.Client, root protocol.VolumeID, args []string) error {
	switch args[0] {
	case "ls":
		m, ok := cli.Mirror(root)
		if !ok {
			return fmt.Errorf("no mirror")
		}
		ids := make([]protocol.NodeID, 0, len(m.Nodes))
		for id := range m.Nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			n := m.Nodes[id]
			fmt.Printf("  %6d %-4s %8d %s\n", n.ID, n.Kind, n.Size, n.Name)
		}
	case "mkdir":
		if len(args) < 2 {
			return fmt.Errorf("mkdir NAME")
		}
		n, err := cli.Mkdir(root, 0, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("  dir %d created\n", n.ID)
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("put NAME CONTENT...")
		}
		content := []byte(strings.Join(args[2:], " "))
		n, reused, err := cli.Upload(root, 0, args[1], content)
		if err != nil {
			return err
		}
		fmt.Printf("  node %d stored (%d bytes, dedup=%v)\n", n.ID, len(content), reused)
	case "get":
		id, err := nodeArg(args)
		if err != nil {
			return err
		}
		data, err := cli.Download(root, id)
		if err != nil {
			return err
		}
		fmt.Printf("  %q\n", data)
	case "rm":
		id, err := nodeArg(args)
		if err != nil {
			return err
		}
		return cli.Unlink(root, id)
	case "mv":
		if len(args) < 3 {
			return fmt.Errorf("mv ID NEWNAME")
		}
		id, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		_, err = cli.Move(root, protocol.NodeID(id), 0, args[2])
		return err
	case "volumes":
		vols, err := cli.ListVolumes()
		if err != nil {
			return err
		}
		for _, v := range vols {
			fmt.Printf("  %6d %-6s gen=%d %s\n", v.ID, v.Type, v.Generation, v.Path)
		}
	case "shares":
		shares, err := cli.ListShares()
		if err != nil {
			return err
		}
		for _, s := range shares {
			fmt.Printf("  %6d vol=%d by=%v to=%v accepted=%v %q\n",
				s.ID, s.Volume, s.SharedBy, s.SharedTo, s.Accepted, s.Name)
		}
	case "sync":
		changed, err := cli.Sync(root)
		if err != nil {
			return err
		}
		fmt.Printf("  %d files changed\n", len(changed))
	case "udf":
		if len(args) < 2 {
			return fmt.Errorf("udf PATH")
		}
		v, err := cli.CreateUDF(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("  volume %d created at %s\n", v.ID, v.Path)
	case "share":
		if len(args) < 3 {
			return fmt.Errorf("share VOLID USERID")
		}
		vol, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return err
		}
		to, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return err
		}
		s, err := cli.CreateShare(protocol.VolumeID(vol), protocol.UserID(to), "cli-share", false)
		if err != nil {
			return err
		}
		fmt.Printf("  share %d offered to %v\n", s.ID, s.SharedTo)
	case "quit":
	default:
		fmt.Println("  commands: ls mkdir put get rm mv volumes shares sync udf share quit")
	}
	return nil
}

func nodeArg(args []string) (protocol.NodeID, error) {
	if len(args) < 2 {
		return 0, fmt.Errorf("%s ID", args[0])
	}
	id, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return 0, err
	}
	return protocol.NodeID(id), nil
}
