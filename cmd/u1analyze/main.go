// Command u1analyze reproduces the paper's figures and tables from a trace.
// It either reads logfiles written by u1sim (-trace DIR) or generates a
// fresh trace in memory (-users/-days), then prints the requested analyses.
//
// Usage:
//
//	u1analyze -users 2000 -days 30 -all
//	u1analyze -trace ./trace -days 30 -fig 2a -fig 7c -table 3
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"u1/internal/analysis"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/workload"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("u1analyze: ")

	traceDir := flag.String("trace", "", "read logfiles from this directory instead of generating")
	users := flag.Int("users", 1000, "population size when generating")
	days := flag.Int("days", 14, "trace window in days")
	seed := flag.Int64("seed", 1, "random seed when generating")
	workers := flag.Int("workers", 0, "parallel generator shards when generating (0 = GOMAXPROCS)")
	all := flag.Bool("all", false, "print every figure and table")
	var figs, tables listFlag
	flag.Var(&figs, "fig", "figure to print (2a 2b 2c 3a 3b 3c 4a 4b 4c 5 6 7a 7b 7c 8 9 10 11 12 13 14 15 16); repeatable")
	flag.Var(&tables, "table", "table to print (1 3); repeatable")
	flag.Parse()

	var t *analysis.Trace
	if *traceDir != "" {
		ds, err := trace.ReadCSV(*traceDir)
		if err != nil {
			log.Fatalf("reading trace: %v", err)
		}
		fmt.Printf("read %d records (%d unparseable lines skipped)\n", len(ds.Records), ds.BadLines)
		t = analysis.FromDataset(ds, workload.PaperStart, *days, 10)
	} else {
		cluster := server.NewCluster(server.Config{Seed: *seed, AuthFailureRate: 0.0276})
		col := trace.NewCollector(trace.Config{
			Start: workload.PaperStart, Days: *days,
			Shards: cluster.Store.NumShards(), Seed: *seed,
		})
		cluster.AddAPIObserver(col.APIObserver())
		cluster.AddRPCObserver(col.RPCObserver())
		workload.New(workload.Config{Users: *users, Days: *days, Seed: *seed, Workers: *workers}, cluster).Run()
		t = analysis.FromCollector(col, workload.PaperStart, *days)
	}
	clean := t.Sanitize()

	want := func(kind, id string) bool {
		if *all {
			return true
		}
		list := figs
		if kind == "table" {
			list = tables
		}
		for _, v := range list {
			if v == id {
				return true
			}
		}
		return false
	}

	// Service-wide analyses run on the raw trace; user-behavior analyses on
	// the sanitized one (§4.1 artifact removal).
	if want("table", "3") {
		fmt.Println(analysis.AnalyzeSummary(clean).Render())
	}
	if want("fig", "2a") || want("fig", "2b") {
		fmt.Println(analysis.AnalyzeTraffic(t).Render())
	}
	if want("fig", "2c") {
		fmt.Println(analysis.AnalyzeRWRatio(t).Render())
	}
	if want("fig", "3a") || want("fig", "3b") {
		fmt.Println(analysis.AnalyzeDependencies(clean).Render())
	}
	if want("fig", "3c") {
		fmt.Println(analysis.AnalyzeLifetime(clean).Render())
	}
	if want("fig", "4a") {
		fmt.Println(analysis.AnalyzeDedup(clean).Render())
	}
	if want("fig", "4b") {
		fmt.Println(analysis.AnalyzeSizes(clean).Render())
	}
	if want("fig", "4c") {
		fmt.Println(analysis.AnalyzeTypes(clean).Render())
	}
	if want("fig", "5") {
		fmt.Println(analysis.AnalyzeDDoS(t).Render())
	}
	if want("fig", "6") {
		fmt.Println(analysis.AnalyzeOnlineActive(clean).Render())
	}
	if want("fig", "7a") {
		fmt.Println(analysis.AnalyzeOpFrequency(clean).Render())
	}
	if want("fig", "7b") || want("fig", "7c") {
		fmt.Println(analysis.AnalyzeUserTraffic(clean).Render())
	}
	if want("fig", "8") {
		fmt.Println(analysis.AnalyzeTransitions(clean).Render())
	}
	if want("fig", "9") {
		fmt.Println(analysis.AnalyzeBurstiness(clean).Render())
	}
	if want("fig", "10") || want("fig", "11") {
		fmt.Println(analysis.AnalyzeVolumes(clean).Render())
	}
	if want("fig", "12") || want("fig", "13") {
		fmt.Println(analysis.AnalyzeRPCPerf(t).Render())
	}
	if want("fig", "14") {
		fmt.Println(analysis.AnalyzeLoadBalance(t).Render())
	}
	if want("fig", "15") || want("fig", "16") {
		fmt.Println(analysis.AnalyzeSessions(clean).Render())
	}
	if want("table", "1") {
		fmt.Println(analysis.AnalyzeFindings(clean).Render())
	}
	if *all || want("fig", "whatif") {
		fmt.Println(analysis.AnalyzeWhatIf(clean).Render())
	}
}
