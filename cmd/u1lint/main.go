// Command u1lint runs the repo's contract-enforcing static analysis passes
// (internal/lint) over module packages and prints one `file:line: [pass]
// message` diagnostic per finding. It exits 0 when the tree is clean, 1 on
// any finding, and 2 when a package fails to load or type-check. The CI lint
// job runs `go run ./cmd/u1lint ./...` as a required step.
//
// Usage:
//
//	u1lint [-list] [pattern ...]
//
// Patterns follow the go tool's shape: `dir/...` walks recursively (skipping
// testdata), a plain directory names one package. The default is `./...`.
// Naming a testdata fixture directory explicitly lints it — that is how the
// golden tests and humans reproduce fixture diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"

	"u1/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the registered passes and exit")
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-15s (allow: %s) %s\n", p.Name, p.Allow, p.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "u1lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "u1lint:", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "u1lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
