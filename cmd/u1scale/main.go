// Command u1scale runs the million-user scale campaign: a generator-only
// run (no trace collector — the point is the back-end and the population,
// not the logfiles) at populations far past the default simulation scale,
// recording sustained event throughput, steady-state resident bytes per
// user, peak process RSS, and power-of-two-choices placement quality versus
// balancer shard count. The results merge into the committed BENCH_*.json
// report as its "scale" section.
//
// The campaign configuration deliberately trades golden-comparability for
// footprint: -compact turns on workload.Config.LowMem (8-byte per-user RNG
// states, clients released on disconnect) and -deltalog -1 disables the
// per-volume delta logs entirely — volumes carry no delta history and every
// delta read from a stale generation falls back to a full rescan (correct,
// just slower for delta readers). Both knobs change the generated stream or
// server behaviour relative to the golden configuration and are recorded in
// the report.
//
// Usage:
//
//	u1scale -users 1000000 -days 1 [-workers 0] [-seed 7]
//	        [-compact=true] [-deltalog -1] [-adapt-epoch]
//	        [-out BENCH_9.json] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"u1/internal/hotpath"
	"u1/internal/metrics"
	"u1/internal/server"
	"u1/internal/sim"
	"u1/internal/workload"
)

func main() {
	users := flag.Int("users", 1_000_000, "population size (the paper served 1.29M)")
	days := flag.Int("days", 1, "campaign window in days")
	seed := flag.Int64("seed", 7, "random seed")
	workers := flag.Int("workers", 0, "parallel generator shards (0 = GOMAXPROCS)")
	compact := flag.Bool("compact", true, "run the generator in low-memory mode (workload.Config.LowMem)")
	deltalog := flag.Int("deltalog", -1, "per-volume delta-log cap (0 = metadata default, negative disables the logs)")
	adaptEpoch := flag.Bool("adapt-epoch", false, "let the engine resize epochs to event density (deterministic, but a different trajectory than the pinned default)")
	out := flag.String("out", "BENCH_9.json", "bench report to merge the scale section into (created if missing; empty to skip)")
	sessions := flag.Int("placement-sessions", 1<<16, "sessions to place per balancer shard count")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the generation run to this file")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cluster := server.NewCluster(server.Config{Seed: *seed, DeltaLogLimit: *deltalog})
	wcfg := workload.Config{
		Users: *users, Days: *days, Seed: *seed,
		Workers: *workers, LowMem: *compact,
	}
	if *adaptEpoch {
		wcfg.EpochAdapt = &sim.EpochAdaptation{LowEvents: 1 << 10, HighEvents: 1 << 18}
	}
	g := workload.New(wcfg, cluster)

	start := time.Now()
	totals := g.Run()
	wall := time.Since(start)

	st := metrics.ScaleStats{
		Users: *users, Days: *days, Workers: g.Engine().NumShards(), Seed: *seed,
		Compact: *compact, DeltaLogLimit: *deltalog,
		Events:      g.Engine().Executed(),
		WallSeconds: wall.Seconds(),
	}
	if wall > 0 {
		st.EventsPerSec = float64(st.Events) / wall.Seconds()
	}

	// Steady-state footprint: everything still reachable after the run is
	// the population's resident state (users, volumes, nodes, content, blob
	// index) — the quantity that caps the single-machine population. The
	// KeepAlive below stops the GC from collecting the cluster and
	// generator before the measurement (their last syntactic use is above).
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.HeapBytes = ms.HeapAlloc
	st.BytesPerUser = float64(ms.HeapAlloc) / float64(*users)
	st.PeakRSSBytes = peakRSS()

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close() //nolint:errcheck
	}
	runtime.KeepAlive(cluster)
	runtime.KeepAlive(g)

	fmt.Printf("scale campaign: %d users x %d days, %d workers (compact=%v, deltalog=%d)\n",
		st.Users, st.Days, st.Workers, st.Compact, st.DeltaLogLimit)
	fmt.Printf("events: %d in %v (%.0f events/s); sessions %d, uploads %d, downloads %d\n",
		st.Events, wall.Round(time.Millisecond), st.EventsPerSec,
		totals.Sessions, totals.Uploads, totals.Downloads)
	fmt.Printf("steady state: %.1f MB heap, %.1f bytes/user, peak RSS %.1f MB\n",
		float64(st.HeapBytes)/1e6, st.BytesPerUser, float64(st.PeakRSSBytes)/1e6)

	// Placement quality: the balancer fixture is independent of the
	// generation run, so the section is comparable across campaigns of any
	// population size.
	st.Placement = hotpath.MeasurePlacement(*sessions, []int{1, 2, 4, 8, 16})
	fmt.Printf("\n%-8s %10s %10s %10s %12s\n", "shards", "backends", "max_load", "mean_load", "max/mean")
	for _, p := range st.Placement {
		fmt.Printf("%-8d %10d %10d %10.1f %12.4f\n", p.Shards, p.Backends, p.MaxLoad, p.MeanLoad, p.MaxOverMean)
	}

	if *out != "" {
		if err := mergeScale(*out, st); err != nil {
			fatal(err)
		}
		fmt.Printf("\nscale section merged into %s\n", *out)
	}
}

// mergeScale sets the scale section of the report at path, creating a
// minimal report when none exists so the campaign can run before the bench.
func mergeScale(path string, st metrics.ScaleStats) error {
	rep, err := metrics.ReadBenchReport(path)
	if errors.Is(err, os.ErrNotExist) {
		rep = metrics.BenchReport{Schema: metrics.BenchSchema}
		err = nil
	}
	if err != nil {
		return err
	}
	rep.Scale = &st
	return metrics.WriteBenchReport(path, rep)
}

// peakRSS reads the process's high-water resident set (VmHWM) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSS() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close() //nolint:errcheck
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
