// Command u1benchdiff compares a freshly generated benchmark report against
// the committed previous one (the BENCH_N.json perf trajectory) and prints a
// markdown summary: per-op ops/sec and p99, harness throughput and hot-path
// rates, with regressions beyond tolerance flagged. CI appends the output to
// the job summary, replacing the manual report-to-report comparison.
//
// Usage:
//
//	u1benchdiff -prev BENCH_2.json -new BENCH_3.json [-tolerance 0.25] [-fail]
//
// By default regressions only warn (exit 0) — CI runner noise must not make
// the build red; -fail turns them into a non-zero exit for local gating.
package main

import (
	"flag"
	"fmt"
	"os"

	"u1/internal/metrics"
)

func main() {
	prevPath := flag.String("prev", "BENCH_2.json", "committed previous benchmark report")
	newPath := flag.String("new", "BENCH_3.json", "freshly generated benchmark report")
	tolerance := flag.Float64("tolerance", 0.25, "fractional worsening allowed before a metric is flagged")
	fail := flag.Bool("fail", false, "exit non-zero when regressions are found")
	flag.Parse()

	prev, err := metrics.ReadBenchReport(*prevPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	next, err := metrics.ReadBenchReport(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	d := metrics.CompareBenchReports(prev, next, *tolerance)
	if err := metrics.WriteBenchDiff(os.Stdout, d, *prevPath, *newPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if regs := d.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "u1benchdiff: %d regression(s) beyond tolerance %.0f%%\n", len(regs), *tolerance*100)
		if *fail {
			os.Exit(1)
		}
	}
}
