module u1

go 1.22
