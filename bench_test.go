// Package u1 holds the repository-level benchmark harness: one benchmark per
// paper table/figure (the per-experiment index of DESIGN.md), each regenerating
// its result from a shared synthetic trace and reporting the headline number
// as a custom metric, plus micro-benchmarks of the hot substrate paths.
//
// Scale knobs: U1_BENCH_USERS and U1_BENCH_DAYS environment variables
// override the default 800-user, 10-day trace.
package u1

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"u1/internal/analysis"
	"u1/internal/blob"
	"u1/internal/client"
	"u1/internal/gateway"
	"u1/internal/hotpath"
	"u1/internal/metadata"
	"u1/internal/metrics"
	"u1/internal/notify"
	"u1/internal/protocol"
	"u1/internal/rpc"
	"u1/internal/server"
	"u1/internal/trace"
	"u1/internal/wal"
	"u1/internal/wire"
	"u1/internal/workload"
)

var (
	benchOnce    sync.Once
	benchRaw     *analysis.Trace
	benchClean   *analysis.Trace
	benchCluster *server.Cluster
	benchUsers   int
	benchDays    int
	benchGenWall time.Duration
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// benchTrace lazily generates the shared experiment trace.
func benchTrace(b *testing.B) (*analysis.Trace, *analysis.Trace) {
	b.Helper()
	benchOnce.Do(func() {
		users := envInt("U1_BENCH_USERS", 800)
		days := envInt("U1_BENCH_DAYS", 10)
		cluster := server.NewCluster(server.Config{
			Seed: 2, AuthFailureRate: 0.0276, DeltaLogLimit: 96,
			// Two regions with read-your-writes routing: replication runs as
			// pure background at the epoch barriers, so the trace stream is
			// bit-identical to the single-region one while the report gains
			// the replication section.
			Regions: 2, ReplicationDelay: 1,
		})
		col := trace.NewCollector(trace.Config{
			Start: workload.PaperStart, Days: days,
			Shards: cluster.Store.NumShards(), Seed: 2,
		})
		cluster.AddAPIObserver(col.APIObserver())
		cluster.AddRPCObserver(col.RPCObserver())
		genStart := time.Now()
		workload.New(workload.Config{
			Users: users, Days: days, Seed: 2,
			Attacks: []workload.Attack{
				{Day: 2, Hour: 13, Duration: 2 * time.Hour, APIFactor: 60, AuthFactor: 10},
			},
		}, cluster).Run()
		benchGenWall = time.Since(genStart)
		benchCluster = cluster
		benchUsers, benchDays = users, days
		benchRaw = analysis.FromCollector(col, workload.PaperStart, days)
		benchClean = benchRaw.Sanitize()
	})
	return benchRaw, benchClean
}

// --- One benchmark per experiment (DESIGN.md index) ---

func BenchmarkTable1Findings(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := analysis.AnalyzeFindings(clean)
		if len(f.Rows) == 0 {
			b.Fatal("no findings")
		}
	}
}

func BenchmarkTable3Summary(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var s analysis.Summary
	for i := 0; i < b.N; i++ {
		s = analysis.AnalyzeSummary(clean)
	}
	b.ReportMetric(float64(s.Transfers), "transfers")
	b.ReportMetric(100*s.UpdateByteFraction(), "update_byte_%")
}

func BenchmarkFig2aTraffic(b *testing.B) {
	raw, _ := benchTrace(b)
	b.ResetTimer()
	var tf analysis.Traffic
	for i := 0; i < b.N; i++ {
		tf = analysis.AnalyzeTraffic(raw)
	}
	b.ReportMetric(tf.DayNightRatio, "day_night_x")
}

func BenchmarkFig2bSizeCategories(b *testing.B) {
	raw, _ := benchTrace(b)
	b.ResetTimer()
	var tf analysis.Traffic
	for i := 0; i < b.N; i++ {
		tf = analysis.AnalyzeTraffic(raw)
	}
	b.ReportMetric(100*tf.UpBuckets.WeightFractions()[4], "gt25MB_upbytes_%")
	b.ReportMetric(100*tf.UpBuckets.CountFractions()[0], "lt05MB_upops_%")
}

func BenchmarkFig2cRWRatio(b *testing.B) {
	raw, _ := benchTrace(b)
	b.ResetTimer()
	var rw analysis.RWRatio
	for i := 0; i < b.N; i++ {
		rw = analysis.AnalyzeRWRatio(raw)
	}
	b.ReportMetric(rw.Box.Median, "rw_median")
}

func BenchmarkFig3aAfterWrite(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var d analysis.Dependencies
	for i := 0; i < b.N; i++ {
		d = analysis.AnalyzeDependencies(clean)
	}
	b.ReportMetric(100*d.WAWFrac, "waw_%")
	b.ReportMetric(100*d.WAWUnderHour, "waw_lt1h_%")
}

func BenchmarkFig3bAfterRead(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var d analysis.Dependencies
	for i := 0; i < b.N; i++ {
		d = analysis.AnalyzeDependencies(clean)
	}
	b.ReportMetric(100*d.RARFrac, "rar_%")
}

func BenchmarkFig3cLifetime(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var l analysis.Lifetime
	for i := 0; i < b.N; i++ {
		l = analysis.AnalyzeLifetime(clean)
	}
	b.ReportMetric(100*l.FileDeadFrac, "files_dead_%")
}

func BenchmarkFig4aDedup(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var d analysis.Dedup
	for i := 0; i < b.N; i++ {
		d = analysis.AnalyzeDedup(clean)
	}
	b.ReportMetric(d.Ratio, "dedup_ratio")
}

func BenchmarkFig4bSizes(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var s analysis.Sizes
	for i := 0; i < b.N; i++ {
		s = analysis.AnalyzeSizes(clean)
	}
	b.ReportMetric(100*s.Sub1MBShare, "lt1MB_%")
}

func BenchmarkFig4cTypes(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ty := analysis.AnalyzeTypes(clean)
		if len(ty.Categories) != 7 {
			b.Fatal("bad categories")
		}
	}
}

func BenchmarkFig5DDoS(b *testing.B) {
	raw, _ := benchTrace(b)
	b.ResetTimer()
	var d analysis.DDoS
	for i := 0; i < b.N; i++ {
		d = analysis.AnalyzeDDoS(raw)
	}
	b.ReportMetric(float64(len(d.Attacks)), "attacks")
}

func BenchmarkFig6OnlineActive(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var oa analysis.OnlineActive
	for i := 0; i < b.N; i++ {
		oa = analysis.AnalyzeOnlineActive(clean)
	}
	b.ReportMetric(100*oa.MaxActiveShare, "max_active_%")
}

func BenchmarkFig7aOpFrequency(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		of := analysis.AnalyzeOpFrequency(clean)
		if len(of.Ops) == 0 {
			b.Fatal("no ops")
		}
	}
}

func BenchmarkFig7bUserTraffic(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var ut analysis.UserTraffic
	for i := 0; i < b.N; i++ {
		ut = analysis.AnalyzeUserTraffic(clean)
	}
	b.ReportMetric(100*ut.UploadedShare, "uploaded_share_%")
}

func BenchmarkFig7cGini(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var ut analysis.UserTraffic
	for i := 0; i < b.N; i++ {
		ut = analysis.AnalyzeUserTraffic(clean)
	}
	b.ReportMetric(ut.GiniUp, "gini_up")
	b.ReportMetric(100*ut.Top1Share, "top1_%")
}

func BenchmarkFig8Transitions(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var tr analysis.Transitions
	for i := 0; i < b.N; i++ {
		tr = analysis.AnalyzeTransitions(clean)
	}
	b.ReportMetric(tr.TransferSelfLoop, "transfer_selfloop")
}

func BenchmarkFig9Burstiness(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var bu analysis.Burstiness
	for i := 0; i < b.N; i++ {
		bu = analysis.AnalyzeBurstiness(clean)
	}
	b.ReportMetric(bu.UploadFit.Alpha, "upload_alpha")
}

func BenchmarkFig10Volumes(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var v analysis.Volumes
	for i := 0; i < b.N; i++ {
		v = analysis.AnalyzeVolumes(clean)
	}
	b.ReportMetric(v.Pearson, "pearson")
}

func BenchmarkFig11UDFShares(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var v analysis.Volumes
	for i := 0; i < b.N; i++ {
		v = analysis.AnalyzeVolumes(clean)
	}
	b.ReportMetric(100*v.UDFShare, "udf_share_%")
}

func BenchmarkFig12RPCTimes(b *testing.B) {
	raw, _ := benchTrace(b)
	b.ResetTimer()
	var rp analysis.RPCPerf
	for i := 0; i < b.N; i++ {
		rp = analysis.AnalyzeRPCPerf(raw)
	}
	b.ReportMetric(100*rp.MaxTail, "max_tail_%")
}

func BenchmarkFig13RPCScatter(b *testing.B) {
	raw, _ := benchTrace(b)
	b.ResetTimer()
	var rp analysis.RPCPerf
	for i := 0; i < b.N; i++ {
		rp = analysis.AnalyzeRPCPerf(raw)
	}
	b.ReportMetric(rp.CascadeToReadRatio, "cascade_read_x")
}

func BenchmarkFig14LoadBalance(b *testing.B) {
	raw, _ := benchTrace(b)
	b.ResetTimer()
	var lb analysis.LoadBalance
	for i := 0; i < b.N; i++ {
		lb = analysis.AnalyzeLoadBalance(raw)
	}
	b.ReportMetric(lb.ShardMinuteCV, "shard_minute_cv")
	b.ReportMetric(100*lb.ShardLongTermCV, "shard_longterm_cv_%")
}

func BenchmarkFig15AuthActivity(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var se analysis.Sessions
	for i := 0; i < b.N; i++ {
		se = analysis.AnalyzeSessions(clean)
	}
	b.ReportMetric(100*se.AuthFailShare, "auth_fail_%")
}

func BenchmarkFig16Sessions(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var se analysis.Sessions
	for i := 0; i < b.N; i++ {
		se = analysis.AnalyzeSessions(clean)
	}
	b.ReportMetric(100*se.Sub1s, "sub1s_%")
	b.ReportMetric(100*se.ActiveShare, "active_%")
}

// BenchmarkWhatIf regenerates the §9 improvement estimates.
func BenchmarkWhatIf(b *testing.B) {
	_, clean := benchTrace(b)
	b.ResetTimer()
	var w analysis.WhatIf
	for i := 0; i < b.N; i++ {
		w = analysis.AnalyzeWhatIf(clean)
	}
	b.ReportMetric(100*w.CacheHitRate, "cache_hit_%")
}

// benchGeneration measures the end-to-end simulator throughput — events
// (API ops, RPCs, session machinery) per wall second — at the given
// generator shard count (0 = GOMAXPROCS).
func benchGeneration(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cluster := server.NewCluster(server.Config{Seed: int64(i) + 10})
		g := workload.New(workload.Config{
			Users: 150, Days: 3, Seed: int64(i) + 10, Workers: workers,
			Attacks: []workload.Attack{},
		}, cluster)
		g.Run()
		b.ReportMetric(float64(g.Engine().Executed()), "events")
		b.ReportMetric(float64(g.Engine().NumShards()), "shards")
	}
}

// BenchmarkTraceGeneration runs one generator shard per core (so it honors
// -cpu: `go test -bench TraceGeneration -cpu 1,4` is the serial-vs-parallel
// comparison CI smokes). On ≥4 cores the per-core rate must beat
// BenchmarkTraceGenerationSerial.
func BenchmarkTraceGeneration(b *testing.B) { benchGeneration(b, 0) }

// BenchmarkTraceGenerationSerial pins Workers=1: the bit-for-bit serial
// stream, the baseline the generator section of BENCH_9.json records.
func BenchmarkTraceGenerationSerial(b *testing.B) { benchGeneration(b, 1) }

// BenchmarkObservability snapshots the live metrics registry of the shared
// bench cluster, derives the machine-readable benchmark report (ops/sec,
// per-op p50/p95/p99 latency, shard balance, contended hot-path throughput,
// durability pricing, cross-region replication) and writes it to
// BENCH_9.json (override with
// U1_BENCH_OUT, empty disables) — the artifact the CI bench-smoke job
// archives as the repo's perf trajectory and diffs against the committed
// previous report.
func BenchmarkObservability(b *testing.B) {
	benchTrace(b)
	out := "BENCH_9.json"
	if v, ok := os.LookupEnv("U1_BENCH_OUT"); ok {
		out = v
	}
	b.ResetTimer()
	var rep metrics.BenchReport
	for i := 0; i < b.N; i++ {
		rep = metrics.BuildBenchReport(benchCluster.Metrics.Snapshot(), benchGenWall.Seconds(), benchUsers, benchDays)
	}
	b.StopTimer()
	rep.HotPaths = hotpath.Measure(0)
	for name, st := range rep.HotPaths {
		b.ReportMetric(st.ParallelOpsPerSec, name+"_par_ops/s")
	}
	gen := hotpath.MeasureGenerator(0, 0)
	rep.Generator = &gen
	b.ReportMetric(gen.SerialEventsPerSec, "gen_serial_events/s")
	b.ReportMetric(gen.ParallelEventsPerSec, "gen_par_events/s")
	if rep.TotalOps == 0 {
		b.Fatal("metrics registry recorded no operations")
	}
	if len(rep.Shards.Reads) == 0 {
		b.Fatal("no shard counters in report")
	}
	for _, op := range []string{"Upload", "Download", "GetDelta"} {
		st, ok := rep.Ops[op]
		if !ok || st.Count == 0 {
			b.Fatalf("op %s missing from report", op)
		}
		if st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
			b.Fatalf("op %s has degenerate quantiles: %+v", op, st)
		}
	}
	for _, path := range []string{hotpath.RPCCall, hotpath.NotifyPublish, hotpath.GatewayPlace, hotpath.GatewayPlaceSharded} {
		st, ok := rep.HotPaths[path]
		if !ok || st.ParallelOpsPerSec <= 0 {
			b.Fatalf("hot path %s missing from report: %+v", path, st)
		}
	}
	if rep.Generator == nil || rep.Generator.SerialEventsPerSec <= 0 || rep.Generator.ParallelEventsPerSec <= 0 {
		b.Fatalf("generator section missing from report: %+v", rep.Generator)
	}
	if rep.Replication == nil || rep.Replication.Published == 0 || rep.Replication.Applied == 0 {
		b.Fatalf("replication section missing from report: %+v", rep.Replication)
	}
	ds, err := hotpath.MeasureDurability(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	rep.Durability = &ds
	for _, policy := range wal.Policies() {
		st, ok := ds.Policies[policy.String()]
		if !ok || st.AppendsPerSec <= 0 {
			b.Fatalf("durability policy %s missing from report: %+v", policy, st)
		}
		b.ReportMetric(st.AppendsPerSec, "wal_"+policy.String()+"_appends/s")
	}
	b.ReportMetric(rep.OpsPerSec, "ops/s")
	b.ReportMetric(float64(rep.TotalOps), "total_ops")
	b.ReportMetric(rep.Shards.CV, "shard_cv")
	if out != "" {
		if err := metrics.WriteBenchReport(out, rep); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkWireRequestRoundTrip(b *testing.B) {
	req := &protocol.Request{
		Op: protocol.OpPutContent, Volume: 3, Node: 99, Name: "song.mp3",
		Hash: protocol.HashBytes([]byte("x")), Size: 4 << 20,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := req.Marshal()
		if _, err := protocol.UnmarshalRequest(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireFrame(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := wire.WriteFrame(&buf, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetadataMakeFile(b *testing.B) {
	store := metadata.New(metadata.Config{Shards: 10})
	root, err := store.CreateUser(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := store.MakeFile(1, root.ID, 0, fmt.Sprintf("f%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetadataGetDelta(b *testing.B) {
	store := metadata.New(metadata.Config{Shards: 10})
	root, _ := store.CreateUser(1)
	for i := 0; i < 256; i++ {
		store.MakeFile(1, root.ID, 0, fmt.Sprintf("f%d", i)) //nolint:errcheck
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.GetDelta(1, root.ID, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobMultipart(b *testing.B) {
	s := blob.New(blob.Config{})
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := s.CreateMultipartUpload(fmt.Sprintf("k%d", i), now)
		for p := 1; p <= 4; p++ {
			if err := s.UploadPartSized(id, p, 5<<20); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.CompleteMultipartUpload(id); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWALAppend times journal appends of a journal-record-sized payload
// under one fsync policy — the raw cost floor of the durable metadata tier.
func benchWALAppend(b *testing.B, policy wal.Policy) {
	b.Helper()
	log, err := wal.Open(b.TempDir(), wal.Options{Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close() //nolint:errcheck
	payload := bytes.Repeat([]byte{0x5A}, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendPerOp(b *testing.B) { benchWALAppend(b, wal.FsyncPerOp) }
func BenchmarkWALAppendGroup(b *testing.B) { benchWALAppend(b, wal.FsyncGroupCommit) }
func BenchmarkWALAppendAsync(b *testing.B) { benchWALAppend(b, wal.FsyncAsync) }

// BenchmarkDurableMakeFile is BenchmarkMetadataMakeFile with the WAL on: the
// journaled-write overhead the durability knobs buy into.
func BenchmarkDurableMakeFile(b *testing.B) {
	store, err := metadata.Open(metadata.Config{
		Shards: 10, Durability: b.TempDir(), FsyncPolicy: wal.FsyncAsync,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close() //nolint:errcheck
	root, err := store.CreateUser(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := store.MakeFile(1, root.ID, 0, fmt.Sprintf("f%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot-path contention benchmarks ---
//
// The per-request path crosses three shared structures: the RPC tier's
// latency sampler, the notification broker, and the gateway balancer. Each
// gets a serial baseline and a b.RunParallel variant; after the
// de-serialization refactor the parallel ops/sec at GOMAXPROCS ≥ 4 must
// exceed the serial rate (scaling), where a globally locked path would sit
// at or below it (serialization). The BENCH_N.json reports record the same
// comparison via internal/hotpath.

var hotBenchStart = time.Unix(1390000000, 0)

func newHotBenchRPC(b *testing.B) *rpc.Server {
	b.Helper()
	store := metadata.New(metadata.Config{Shards: 10})
	if _, err := store.CreateUser(1); err != nil {
		b.Fatal(err)
	}
	return rpc.NewServer(store, rpc.Config{Seed: 11})
}

func BenchmarkHotPathSerialRPCCall(b *testing.B) {
	s := newHotBenchRPC(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ObserveAuth(1, hotBenchStart, nil, nil)
	}
}

func BenchmarkHotPathParallelRPCCall(b *testing.B) {
	s := newHotBenchRPC(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.ObserveAuth(1, hotBenchStart, nil, nil)
		}
	})
}

func BenchmarkHotPathParallelNotifyPublish(b *testing.B) {
	broker := notify.NewBroker()
	for _, name := range server.DefaultMachines {
		broker.Register(name, 1)
	}
	e := notify.Event{Kind: protocol.PushVolumeChanged, User: 1, Origin: server.DefaultMachines[0]}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			broker.Publish(e)
		}
	})
}

func BenchmarkHotPathParallelBalancer(b *testing.B) {
	bal := gateway.NewBalancer(server.DefaultMachines...)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lease, err := bal.Acquire()
			if err != nil {
				b.Error(err)
				return
			}
			bal.Release(lease)
		}
	})
}

// BenchmarkHotPathParallelShardedBalancer contends the power-of-two-choices
// balancer in exactly the configuration hotpath.Measure records into the
// BENCH_*.json hot-path section (shared fixture, so the two numbers stay
// comparable).
func BenchmarkHotPathParallelShardedBalancer(b *testing.B) {
	bal := gateway.NewShardedBalancer(hotpath.ShardedBalancerShards, hotpath.ShardedBalancerFleet()...)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lease, err := bal.Acquire()
			if err != nil {
				b.Error(err)
				return
			}
			bal.Release(lease)
		}
	})
}

// BenchmarkEndToEndUpload measures a full client upload through the
// in-process stack (auth, make, dedup probe, uploadjob, parts, content).
func BenchmarkEndToEndUpload(b *testing.B) {
	cluster := server.NewCluster(server.Config{Seed: 99})
	token, err := cluster.Auth.Issue(1)
	if err != nil {
		b.Fatal(err)
	}
	now := workload.PaperStart
	cli := client.New(client.NewDirectTransport(cluster.LeastLoaded, func() time.Time { return now }))
	if err := cli.Connect(token); err != nil {
		b.Fatal(err)
	}
	root, _ := cli.RootVolume()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := protocol.HashBytes([]byte(fmt.Sprintf("content-%d", i)))
		if _, _, err := cli.UploadSized(root, 0, fmt.Sprintf("f%d.txt", i), h, 64<<10, 40<<10); err != nil {
			b.Fatal(err)
		}
	}
}
